//! Link-indexed in-flight storage: the event core of the simulator.
//!
//! The first-generation simulator kept every in-flight message in one flat
//! `Vec<Envelope>` that schedulers scanned linearly, so a single scheduling
//! decision cost `O(messages)` — the dominant cost of large Theorem 2 runs,
//! whose pulse traffic keeps hundreds of messages in flight. This module
//! replaces the flat vector with a **link-indexed** structure:
//!
//! * every *directed* adjacency `(u, v)` of the graph is a [`LinkId`],
//!   assigned once at simulation start in node/neighbour order;
//! * each link owns a FIFO queue of envelopes — messages on the same link are
//!   delivered (or deleted) in send order, like a physical wire;
//! * the set of **non-empty** links is maintained incrementally, so a
//!   scheduler picks among `O(active links)` candidates instead of
//!   `O(messages)`, and enqueue/dequeue are `O(1)`.
//!
//! The paper's asynchrony model only promises arbitrary finite delay per
//! message; per-link FIFO is a legal (and realistic) refinement of that
//! model. Cross-link reordering — the part adversarial schedulers actually
//! exploit — is fully preserved: the [`crate::Scheduler`] freely chooses
//! *which* link delivers next.
//!
//! # Two queue backends
//!
//! The per-link queue representation is chosen by [`LinkStore`]:
//!
//! * [`LinkStore::Exact`] (the `exact` submodule) — the reference backend:
//!   one `VecDeque<Envelope>` per link, one stored entry per message.
//! * [`LinkStore::Counting`] (the `counting` submodule) — the compressed backend for the
//!   protocol's *content-oblivious* traffic: runs of same-payload messages
//!   whose sequence numbers advance by a constant stride collapse to a single
//!   `(payload, first_seq, stride, count)` record, so a link carrying a
//!   million pulses costs one run and delivery is a decrement. Messages that
//!   do not extend a run (distinct payloads such as CCinit shares or
//!   `ControlMsg` envelopes, or irregular sequence gaps) are kept exact as
//!   their own runs. The head envelope of each link is always materialised,
//!   so schedulers still see real [`Envelope`]s with exact `seq` numbers.
//!
//! Both backends reconstruct the *identical* envelope sequence: same
//! payloads, same exact `seq` numbers, same per-link FIFO order, same
//! activation order of the shared active set. Everything downstream —
//! scheduler decisions (fifo/random/lifo), noise draws (including
//! omission/burst deletions, which are drawn per *popped* envelope in both
//! backends), transcripts, statistics, observer curves — is therefore
//! byte-identical between representations; the equivalence tests and the CI
//! counting gate hold the two backends to that contract.
//!
//! **Queue-operation accounting.** [`LinkTable::queue_ops`] counts stored
//! queue entries inserted or removed: the exact backend pays one operation
//! per push and one per pop, while the counting backend pays one per run
//! created and one per run exhausted — extending a run or decrementing it is
//! free, and the materialised head is a view cache, not a stored entry. The
//! `counting_core` bench charts this ratio against queue depth.
//!
//! Determinism: link ids, queue contents and the active-set order are pure
//! functions of the event sequence, so seeded runs remain byte-reproducible.

mod counting;
mod exact;

use std::fmt;

use fdn_graph::{Graph, NodeId};

use crate::envelope::Envelope;

use counting::CountingQueues;
use exact::ExactQueues;

/// Identifier of a directed link (an ordered pair of adjacent nodes).
///
/// Ids are dense: `0..link_count()`, assigned in node order, neighbours in
/// graph adjacency order — a pure function of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Sentinel for "not in the active list".
const INACTIVE: usize = usize::MAX;

/// Which per-link queue representation a [`LinkTable`] uses — see the
/// [module docs](self) for the contract between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkStore {
    /// One stored envelope per in-flight message (the reference backend).
    #[default]
    Exact,
    /// Run-length-encoded queues: same-payload constant-stride runs collapse
    /// to a count; delivery is a decrement.
    Counting,
}

impl LinkStore {
    /// Both representations, in gating order (reference first).
    pub const ALL: [LinkStore; 2] = [LinkStore::Exact, LinkStore::Counting];

    /// The stable textual form; [`LinkStore::parse`] is the inverse.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Parses a label produced by [`LinkStore::label`].
    ///
    /// # Errors
    ///
    /// Returns a description of the problem on unknown names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "exact" => Ok(LinkStore::Exact),
            "counting" => Ok(LinkStore::Counting),
            other => Err(format!("unknown link store `{other}` (exact|counting)")),
        }
    }
}

impl fmt::Display for LinkStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkStore::Exact => f.write_str("exact"),
            LinkStore::Counting => f.write_str("counting"),
        }
    }
}

/// The backend actually holding queued envelopes. Methods mirror each other;
/// `push`/`pop` report `(queue len, stored-entry ops)` so the shared
/// [`LinkTable`] can maintain the active set and the op counter identically
/// for both representations.
#[derive(Debug, Clone)]
enum Backend {
    Exact(ExactQueues),
    Counting(CountingQueues),
}

impl Backend {
    fn new(store: LinkStore, links: usize) -> Self {
        match store {
            LinkStore::Exact => Backend::Exact(ExactQueues::new(links)),
            LinkStore::Counting => Backend::Counting(CountingQueues::new(links)),
        }
    }

    fn store(&self) -> LinkStore {
        match self {
            Backend::Exact(_) => LinkStore::Exact,
            Backend::Counting(_) => LinkStore::Counting,
        }
    }

    fn push(&mut self, link: LinkId, env: Envelope) -> (usize, u64) {
        match self {
            Backend::Exact(q) => q.push(link, env),
            Backend::Counting(q) => q.push(link, env),
        }
    }

    fn pop(&mut self, link: LinkId, ends: (NodeId, NodeId)) -> Option<(Envelope, usize, u64)> {
        match self {
            Backend::Exact(q) => q.pop(link),
            Backend::Counting(q) => q.pop(link, ends),
        }
    }

    fn head(&self, link: LinkId) -> Option<&Envelope> {
        match self {
            Backend::Exact(q) => q.head(link),
            Backend::Counting(q) => q.head(link),
        }
    }

    fn len(&self, link: LinkId) -> usize {
        match self {
            Backend::Exact(q) => q.len(link),
            Backend::Counting(q) => q.len(link),
        }
    }

    fn clear(&mut self) {
        match self {
            Backend::Exact(q) => q.clear(),
            Backend::Counting(q) => q.clear(),
        }
    }
}

/// Per-directed-edge FIFO queues plus an incrementally-maintained set of
/// non-empty links. See the [module docs](self) for the design rationale.
#[derive(Debug, Clone)]
pub struct LinkTable {
    /// `(from, to)` endpoints per link id.
    ends: Vec<(NodeId, NodeId)>,
    /// Per source node: `(to, link)` pairs sorted by `to`, for id lookup.
    from_index: Vec<Vec<(NodeId, LinkId)>>,
    /// The queued envelopes, in the chosen representation.
    queues: Backend,
    /// The non-empty links. Order is deterministic (activation order, with
    /// swap-remove compaction) but otherwise unspecified; schedulers must not
    /// read meaning into positions.
    active: Vec<LinkId>,
    /// Position of each link in `active`, or [`INACTIVE`].
    active_pos: Vec<usize>,
    /// Total messages in flight across all links.
    total: usize,
    /// Stored queue entries inserted or removed since construction or the
    /// last [`LinkTable::clear`] — the backend cost measure (module docs).
    queue_ops: u64,
}

impl LinkTable {
    /// Builds the (empty) link table of `graph` with the reference
    /// [`LinkStore::Exact`] backend: one link per directed adjacency.
    pub fn new(graph: &Graph) -> Self {
        LinkTable::with_store(graph, LinkStore::Exact)
    }

    /// Builds the (empty) link table of `graph` with the chosen backend.
    pub fn with_store(graph: &Graph, store: LinkStore) -> Self {
        // Every undirected edge contributes exactly two directed links, so
        // the registry sizes are known before the registration pass.
        let links = 2 * graph.edge_count();
        let mut ends = Vec::with_capacity(links);
        let mut from_index = Vec::with_capacity(graph.node_count());
        for u in graph.nodes() {
            let mut row: Vec<(NodeId, LinkId)> = graph
                .neighbors(u)
                .iter()
                .map(|&v| {
                    let id = LinkId(ends.len() as u32);
                    ends.push((u, v));
                    (v, id)
                })
                .collect();
            row.sort_unstable_by_key(|&(to, _)| to);
            from_index.push(row);
        }
        debug_assert_eq!(ends.len(), links, "directed links != 2 * edge count");
        LinkTable {
            ends,
            from_index,
            queues: Backend::new(store, links),
            active: Vec::with_capacity(links),
            active_pos: vec![INACTIVE; links],
            total: 0,
            queue_ops: 0,
        }
    }

    /// Which queue representation this table uses.
    pub fn store(&self) -> LinkStore {
        self.queues.store()
    }

    /// Switches the queue representation, **discarding any queued
    /// envelopes** (the registry — ids, endpoints, lookup index — is kept).
    /// Used when warm-starting a cached topology under a different backend
    /// than the one that built it; callers that must preserve in-flight
    /// traffic should not convert mid-run.
    pub fn convert_store(&mut self, store: LinkStore) {
        if store == self.store() {
            return;
        }
        self.queues = Backend::new(store, self.ends.len());
        for pos in &mut self.active_pos {
            *pos = INACTIVE;
        }
        self.active.clear();
        self.total = 0;
        self.queue_ops = 0;
    }

    /// Number of directed links (twice the undirected edge count).
    pub fn link_count(&self) -> usize {
        self.ends.len()
    }

    /// The `(from, to)` endpoints of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn ends(&self, link: LinkId) -> (NodeId, NodeId) {
        self.ends[link.index()]
    }

    /// The link carrying messages from `from` to `to`, if the graph has that
    /// adjacency.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        let row = self.from_index.get(from.index())?;
        row.binary_search_by_key(&to, |&(t, _)| t)
            .ok()
            .map(|i| row[i].1)
    }

    /// Enqueues an envelope on its link's FIFO queue. Returns the link and
    /// the queue depth *after* the push (for high-water accounting).
    ///
    /// # Panics
    ///
    /// Panics if the envelope's `(from, to)` is not an adjacency of the
    /// graph; [`crate::Simulation`] validates sends before queueing.
    pub fn push(&mut self, env: Envelope) -> (LinkId, usize) {
        let link = self
            .link_between(env.from, env.to)
            .expect("envelope on a non-existent link");
        let (len, ops) = self.queues.push(link, env);
        if len == 1 {
            self.active_pos[link.index()] = self.active.len();
            self.active.push(link);
        }
        self.total += 1;
        self.queue_ops += ops;
        (link, len)
    }

    /// The oldest in-flight envelope on `link`, if any.
    pub fn head(&self, link: LinkId) -> Option<&Envelope> {
        self.queues.head(link)
    }

    /// Dequeues the oldest envelope of `link` (FIFO), maintaining the active
    /// set. Returns `None` if the link is empty or out of range.
    pub fn pop(&mut self, link: LinkId) -> Option<Envelope> {
        let ends = *self.ends.get(link.index())?;
        let (env, len, ops) = self.queues.pop(link, ends)?;
        if len == 0 {
            let pos = self.active_pos[link.index()];
            debug_assert_ne!(pos, INACTIVE, "active set out of sync");
            self.active.swap_remove(pos);
            self.active_pos[link.index()] = INACTIVE;
            if let Some(&moved) = self.active.get(pos) {
                self.active_pos[moved.index()] = pos;
            }
        }
        self.total -= 1;
        self.queue_ops += ops;
        Some(env)
    }

    /// Messages currently queued on `link`.
    pub fn queue_len(&self, link: LinkId) -> usize {
        self.queues.len(link)
    }

    /// The non-empty links, in deterministic (but unspecified) order.
    pub fn active(&self) -> &[LinkId] {
        &self.active
    }

    /// Total messages in flight across all links.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether no message is in flight.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Stored queue entries inserted or removed since construction or the
    /// last [`LinkTable::clear`]: envelopes pushed/popped for the exact
    /// backend, runs created/exhausted for the counting backend. See the
    /// [module docs](self) for why this is the backend cost measure.
    pub fn queue_ops(&self) -> u64 {
        self.queue_ops
    }

    /// Empties every queue and the active set, keeping the link registry
    /// (ids, endpoints, lookup index) intact. This is what lets a simulation
    /// be warm-started over the same topology without re-registering links:
    /// registration sorts every node's adjacency row, while clearing only
    /// drops queue contents. The [`LinkTable::queue_ops`] counter restarts
    /// from zero.
    pub fn clear(&mut self) {
        self.queues.clear();
        for pos in &mut self.active_pos {
            *pos = INACTIVE;
        }
        self.active.clear();
        self.total = 0;
        self.queue_ops = 0;
    }

    /// A read-only view for schedulers.
    pub fn view(&self) -> LinkView<'_> {
        LinkView { table: self }
    }
}

/// What a [`crate::Scheduler`] sees when asked to pick the next delivery: the
/// non-empty links, their head envelopes and queue depths. Borrowed from the
/// simulation's [`LinkTable`] for the duration of one decision.
#[derive(Debug, Clone, Copy)]
pub struct LinkView<'a> {
    table: &'a LinkTable,
}

impl<'a> LinkView<'a> {
    /// The non-empty links. Guaranteed non-empty when handed to
    /// [`crate::Scheduler::next_link`].
    pub fn active(&self) -> &'a [LinkId] {
        self.table.active()
    }

    /// The oldest (next-to-deliver) envelope on an active link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is empty — schedulers only see active links.
    pub fn head(&self, link: LinkId) -> &'a Envelope {
        self.table.head(link).expect("head of an empty link")
    }

    /// Messages queued on `link`.
    pub fn queue_len(&self, link: LinkId) -> usize {
        self.table.queue_len(link)
    }

    /// The `(from, to)` endpoints of `link`.
    pub fn ends(&self, link: LinkId) -> (NodeId, NodeId) {
        self.table.ends(link)
    }

    /// Total messages in flight.
    pub fn total(&self) -> usize {
        self.table.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdn_graph::generators;

    fn env(from: u32, to: u32, seq: u64) -> Envelope {
        Envelope {
            from: NodeId(from),
            to: NodeId(to),
            payload: vec![seq as u8].into(),
            seq,
        }
    }

    /// A pulse-like envelope: same single-byte payload regardless of seq.
    fn pulse(from: u32, to: u32, seq: u64) -> Envelope {
        Envelope {
            from: NodeId(from),
            to: NodeId(to),
            payload: vec![0].into(),
            seq,
        }
    }

    #[test]
    fn link_store_labels_roundtrip() {
        for store in LinkStore::ALL {
            assert_eq!(LinkStore::parse(&store.label()).unwrap(), store);
        }
        assert_eq!(LinkStore::default(), LinkStore::Exact);
        assert!(LinkStore::parse("compressed").is_err());
    }

    #[test]
    fn link_ids_cover_every_directed_adjacency() {
        let g = generators::cycle(4).unwrap();
        let t = LinkTable::new(&g);
        assert_eq!(t.link_count(), 2 * g.edge_count());
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                let l = t.link_between(u, v).unwrap();
                assert_eq!(t.ends(l), (u, v));
            }
        }
        // Opposite directions are distinct links.
        let a = t.link_between(NodeId(0), NodeId(1)).unwrap();
        let b = t.link_between(NodeId(1), NodeId(0)).unwrap();
        assert_ne!(a, b);
        // Non-adjacent pairs have no link.
        assert_eq!(t.link_between(NodeId(0), NodeId(2)), None);
        assert_eq!(t.link_between(NodeId(9), NodeId(0)), None);
    }

    #[test]
    fn push_pop_preserves_fifo_per_link() {
        for store in LinkStore::ALL {
            let g = generators::cycle(4).unwrap();
            let mut t = LinkTable::with_store(&g, store);
            assert_eq!(t.store(), store);
            let (l01, d1) = t.push(env(0, 1, 1));
            let (same, d2) = t.push(env(0, 1, 2));
            assert_eq!(l01, same);
            assert_eq!((d1, d2), (1, 2));
            t.push(env(1, 2, 3));
            assert_eq!(t.total(), 3);
            assert_eq!(t.active().len(), 2);
            assert_eq!(t.head(l01).unwrap().seq, 1);
            assert_eq!(t.pop(l01).unwrap().seq, 1);
            assert_eq!(t.pop(l01).unwrap().seq, 2);
            assert_eq!(t.pop(l01), None);
            assert_eq!(t.total(), 1);
            assert_eq!(t.active().len(), 1);
        }
    }

    #[test]
    fn active_set_tracks_empty_and_non_empty_links() {
        for store in LinkStore::ALL {
            let g = generators::cycle(5).unwrap();
            let mut t = LinkTable::with_store(&g, store);
            assert!(t.is_empty());
            assert!(t.active().is_empty());
            let (a, _) = t.push(env(0, 1, 0));
            let (b, _) = t.push(env(1, 2, 1));
            let (c, _) = t.push(env(2, 3, 2));
            assert_eq!(t.active(), &[a, b, c]);
            // Draining the *first* active link swap-removes: c takes its slot.
            t.pop(a).unwrap();
            assert_eq!(t.active(), &[c, b]);
            // Re-activation appends at the end again.
            t.push(env(0, 1, 3));
            assert_eq!(t.active(), &[c, b, a]);
            t.pop(c).unwrap();
            t.pop(b).unwrap();
            t.pop(a).unwrap();
            assert!(t.is_empty());
            assert!(t.active().is_empty());
        }
    }

    #[test]
    fn view_exposes_heads_depths_and_ends() {
        for store in LinkStore::ALL {
            let g = generators::cycle(4).unwrap();
            let mut t = LinkTable::with_store(&g, store);
            let (l, _) = t.push(env(2, 1, 7));
            t.push(env(2, 1, 8));
            let view = t.view();
            assert_eq!(view.active(), &[l]);
            assert_eq!(view.head(l).seq, 7);
            assert_eq!(view.queue_len(l), 2);
            assert_eq!(view.ends(l), (NodeId(2), NodeId(1)));
            assert_eq!(view.total(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "non-existent link")]
    fn push_on_missing_adjacency_panics() {
        let g = generators::cycle(4).unwrap();
        let mut t = LinkTable::new(&g);
        t.push(env(0, 2, 0));
    }

    #[test]
    #[should_panic(expected = "non-existent link")]
    fn push_on_missing_adjacency_panics_in_counting_mode() {
        let g = generators::cycle(4).unwrap();
        let mut t = LinkTable::with_store(&g, LinkStore::Counting);
        t.push(env(0, 2, 0));
    }

    /// Pushes the same traffic into both backends and drains link-by-link in
    /// the same order, asserting every popped envelope (payload *and* seq),
    /// every reported depth, every head and the active set agree — the
    /// table-level core of the representation-equivalence contract.
    fn assert_backends_agree(traffic: &[Envelope]) {
        let g = generators::cycle(6).unwrap();
        let mut exact = LinkTable::new(&g);
        let mut counting = LinkTable::with_store(&g, LinkStore::Counting);
        for env in traffic {
            let (le, de) = exact.push(env.clone());
            let (lc, dc) = counting.push(env.clone());
            assert_eq!((le, de), (lc, dc), "push disagreement on {env:?}");
            assert_eq!(exact.active(), counting.active());
        }
        while !exact.is_empty() {
            let link = exact.active()[0];
            assert_eq!(exact.head(link), counting.head(link));
            assert_eq!(exact.queue_len(link), counting.queue_len(link));
            let a = exact.pop(link);
            let b = counting.pop(link);
            assert_eq!(a, b);
            assert_eq!(exact.active(), counting.active());
            assert_eq!(exact.total(), counting.total());
        }
        assert!(counting.is_empty());
    }

    #[test]
    fn backends_agree_on_homogeneous_pulse_runs() {
        // Consecutive seqs (stride 1) on one link.
        let traffic: Vec<Envelope> = (0..100).map(|s| pulse(0, 1, s)).collect();
        assert_backends_agree(&traffic);
    }

    #[test]
    fn backends_agree_on_broadcast_stride_runs() {
        // A node alternating sends to both ring neighbours: each link sees a
        // constant stride of 2 — the drain pattern of a pulse broadcast.
        let traffic: Vec<Envelope> = (0..100)
            .map(|s| {
                if s % 2 == 0 {
                    pulse(1, 0, s)
                } else {
                    pulse(1, 2, s)
                }
            })
            .collect();
        assert_backends_agree(&traffic);
    }

    #[test]
    fn backends_agree_on_runs_split_by_control_envelopes() {
        // Pulses interrupted by distinguishable control payloads (CCinit
        // shares / ControlMsg-style), at every interruption position.
        for split in 0..12 {
            let mut traffic = Vec::new();
            for s in 0..12u64 {
                if s == split {
                    traffic.push(env(0, 1, s)); // distinct payload: seq byte
                } else {
                    traffic.push(pulse(0, 1, s));
                }
            }
            assert_backends_agree(&traffic);
        }
    }

    #[test]
    fn backends_agree_on_irregular_seq_gaps() {
        // Same payload but a non-constant stride: runs must break rather
        // than mis-reconstruct seqs.
        let seqs = [0u64, 1, 2, 10, 11, 13, 14, 15, 40, 41, 42, 43, 99];
        let traffic: Vec<Envelope> = seqs.iter().map(|&s| pulse(3, 4, s)).collect();
        assert_backends_agree(&traffic);
    }

    #[test]
    fn counting_runs_collapse_queue_ops() {
        let g = generators::cycle(4).unwrap();
        let n = 1_000u64;
        let mut exact = LinkTable::new(&g);
        let mut counting = LinkTable::with_store(&g, LinkStore::Counting);
        for t in [&mut exact, &mut counting] {
            for s in 0..n {
                t.push(pulse(0, 1, s));
            }
            let l = t.link_between(NodeId(0), NodeId(1)).unwrap();
            for s in 0..n {
                assert_eq!(t.pop(l).unwrap().seq, s);
            }
        }
        // Exact pays 2 ops per envelope; the whole homogeneous run costs the
        // counting backend one run created + one exhausted.
        assert_eq!(exact.queue_ops(), 2 * n);
        assert_eq!(counting.queue_ops(), 2);
        assert!(exact.queue_ops() >= 10 * counting.queue_ops());
    }

    #[test]
    fn clear_and_convert_keep_the_registry() {
        let g = generators::cycle(4).unwrap();
        let mut t = LinkTable::with_store(&g, LinkStore::Counting);
        for s in 0..50 {
            t.push(pulse(0, 1, s));
        }
        assert!(t.queue_ops() > 0);
        t.clear();
        assert!(t.is_empty());
        assert!(t.active().is_empty());
        assert_eq!(t.queue_ops(), 0);
        assert_eq!(t.store(), LinkStore::Counting);
        // The registry survives: pushes still resolve to the same link ids.
        let l = t.link_between(NodeId(0), NodeId(1)).unwrap();
        let (l2, _) = t.push(pulse(0, 1, 99));
        assert_eq!(l, l2);

        // Conversion discards traffic but keeps ids and endpoints.
        t.convert_store(LinkStore::Exact);
        assert_eq!(t.store(), LinkStore::Exact);
        assert!(t.is_empty());
        assert_eq!(t.link_between(NodeId(0), NodeId(1)), Some(l));
        assert_eq!(t.ends(l), (NodeId(0), NodeId(1)));
        // Converting to the current store is a no-op even with traffic.
        t.push(pulse(0, 1, 100));
        t.convert_store(LinkStore::Exact);
        assert_eq!(t.total(), 1);
    }
}
