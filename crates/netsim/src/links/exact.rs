//! The reference queue backend: one stored [`Envelope`] per in-flight
//! message, in a `VecDeque` per link. Every push and pop is one stored-entry
//! operation — the baseline the counting backend is measured against.

use std::collections::VecDeque;

use crate::envelope::Envelope;

use super::LinkId;

/// Per-link FIFO queues of whole envelopes.
#[derive(Debug, Clone)]
pub(super) struct ExactQueues {
    queues: Vec<VecDeque<Envelope>>,
}

impl ExactQueues {
    pub(super) fn new(links: usize) -> Self {
        ExactQueues {
            queues: vec![VecDeque::new(); links],
        }
    }

    /// Appends `env`; returns the queue length after the push and the one
    /// stored-entry operation it cost.
    pub(super) fn push(&mut self, link: LinkId, env: Envelope) -> (usize, u64) {
        let q = &mut self.queues[link.index()];
        q.push_back(env);
        (q.len(), 1)
    }

    /// Removes the oldest envelope; returns it with the remaining queue
    /// length and the one stored-entry operation it cost. `None` if the link
    /// is empty or out of range.
    pub(super) fn pop(&mut self, link: LinkId) -> Option<(Envelope, usize, u64)> {
        let q = self.queues.get_mut(link.index())?;
        let env = q.pop_front()?;
        Some((env, q.len(), 1))
    }

    pub(super) fn head(&self, link: LinkId) -> Option<&Envelope> {
        self.queues.get(link.index()).and_then(VecDeque::front)
    }

    pub(super) fn len(&self, link: LinkId) -> usize {
        self.queues.get(link.index()).map_or(0, VecDeque::len)
    }

    pub(super) fn clear(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
    }
}
