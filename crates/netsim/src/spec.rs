//! Serializable descriptions of noise models and schedulers.
//!
//! [`crate::NoiseModel`] and [`crate::Scheduler`] are stateful trait objects
//! (they own RNGs), so they cannot themselves sit in a scenario matrix, be
//! compared, printed in a report or parsed back from a CLI flag. [`NoiseSpec`]
//! and [`SchedulerSpec`] are the value-level counterparts: plain enums with a
//! stable label, a parser, and a `build(seed)` factory that produces a fresh
//! boxed instance for one simulation run. Seeded variants take their seed at
//! build time, so one spec value fans out across a whole seed sweep.

use std::fmt;

use crate::noise::{
    BitFlip, Burst, ConstantOne, CrashLink, FullCorruption, NoiseModel, Noiseless, Omission,
};
use crate::scheduler::{FifoScheduler, LifoScheduler, RandomScheduler, Scheduler};

/// A noise model, as data. `build(seed)` of equal specs with equal seeds
/// yields identically-behaving models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseSpec {
    /// Identity channels ([`Noiseless`]).
    Noiseless,
    /// Total content corruption ([`FullCorruption`]), the paper's model.
    FullCorruption,
    /// Every payload becomes the byte `1` ([`ConstantOne`]), the §6 adversary.
    ConstantOne,
    /// Independent per-bit flips with probability `p` ([`BitFlip`]).
    BitFlip {
        /// Per-bit flip probability in `[0, 1]`.
        p: f64,
    },
    /// Independent message deletion ([`Omission`]) — outside the paper's
    /// model, used to measure where the no-deletion assumption bites.
    Omission {
        /// Deliveries dropped out of every 1000, in `[0, 1000]`.
        drop_per_mille: u16,
    },
    /// Permanent crash of the link carrying the `at_pulse`-th delivery
    /// ([`CrashLink`]) — outside the paper's model.
    CrashLink {
        /// 0-indexed delivery at which the crash occurs.
        at_pulse: u64,
    },
    /// Periodic burst deletion ([`Burst`]) — outside the paper's model.
    Burst {
        /// Window length in deliveries (positive).
        period: u64,
        /// Deliveries deleted at the start of each window (`<= period`).
        len: u64,
    },
}

impl NoiseSpec {
    /// The specs every campaign can sweep without extra parameters.
    pub const BASIC: [NoiseSpec; 3] = [
        NoiseSpec::Noiseless,
        NoiseSpec::FullCorruption,
        NoiseSpec::ConstantOne,
    ];

    /// Canonical deletion-side frontier sweep: one representative of each
    /// adversary that violates the paper's no-deletion assumption.
    pub const DELETION: [NoiseSpec; 3] = [
        NoiseSpec::Omission {
            drop_per_mille: 200,
        },
        NoiseSpec::CrashLink { at_pulse: 40 },
        NoiseSpec::Burst { period: 8, len: 2 },
    ];

    /// Whether this spec can delete messages (i.e. steps outside the paper's
    /// alteration-only model).
    pub fn deletes(&self) -> bool {
        matches!(
            self,
            NoiseSpec::Omission { .. } | NoiseSpec::CrashLink { .. } | NoiseSpec::Burst { .. }
        )
    }

    /// Builds a fresh model instance for one run.
    pub fn build(&self, seed: u64) -> Box<dyn NoiseModel> {
        match *self {
            NoiseSpec::Noiseless => Box::new(Noiseless),
            NoiseSpec::FullCorruption => Box::new(FullCorruption::new(seed)),
            NoiseSpec::ConstantOne => Box::new(ConstantOne),
            NoiseSpec::BitFlip { p } => Box::new(BitFlip::new(p, seed)),
            NoiseSpec::Omission { drop_per_mille } => Box::new(Omission::new(drop_per_mille, seed)),
            NoiseSpec::CrashLink { at_pulse } => Box::new(CrashLink::new(at_pulse)),
            NoiseSpec::Burst { period, len } => Box::new(Burst::new(period, len)),
        }
    }

    /// The stable textual form; [`NoiseSpec::parse`] is the inverse.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Parses a label produced by [`NoiseSpec::label`].
    ///
    /// # Errors
    ///
    /// Returns a description of the problem on unknown names or bad
    /// parameters.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        match s {
            "noiseless" => Ok(NoiseSpec::Noiseless),
            "full-corruption" => Ok(NoiseSpec::FullCorruption),
            "constant-one" => Ok(NoiseSpec::ConstantOne),
            _ => {
                if let Some(p) = s.strip_prefix("bitflip(").and_then(|r| r.strip_suffix(')')) {
                    let p: f64 = p
                        .trim()
                        .parse()
                        .map_err(|_| format!("noise `{s}`: probability must be a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("noise `{s}`: probability must be in [0, 1]"));
                    }
                    Ok(NoiseSpec::BitFlip { p })
                } else if let Some(r) = s
                    .strip_prefix("omission(")
                    .and_then(|r| r.strip_suffix(')'))
                {
                    let drop_per_mille: u16 = r
                        .trim()
                        .parse()
                        .map_err(|_| format!("noise `{s}`: drop rate must be an integer"))?;
                    if drop_per_mille > 1000 {
                        return Err(format!("noise `{s}`: drop rate is per mille (0..=1000)"));
                    }
                    Ok(NoiseSpec::Omission { drop_per_mille })
                } else if let Some(r) = s
                    .strip_prefix("crash-link(")
                    .and_then(|r| r.strip_suffix(')'))
                {
                    let at_pulse: u64 = r
                        .trim()
                        .parse()
                        .map_err(|_| format!("noise `{s}`: crash pulse must be an integer"))?;
                    Ok(NoiseSpec::CrashLink { at_pulse })
                } else if let Some(r) = s.strip_prefix("burst(").and_then(|r| r.strip_suffix(')')) {
                    let (period, len) = r
                        .split_once(',')
                        .ok_or_else(|| format!("noise `{s}`: expected burst(period,len)"))?;
                    let period: u64 = period
                        .trim()
                        .parse()
                        .map_err(|_| format!("noise `{s}`: period must be an integer"))?;
                    let len: u64 = len
                        .trim()
                        .parse()
                        .map_err(|_| format!("noise `{s}`: length must be an integer"))?;
                    if period == 0 {
                        return Err(format!("noise `{s}`: period must be positive"));
                    }
                    if len > period {
                        return Err(format!("noise `{s}`: length must not exceed the period"));
                    }
                    Ok(NoiseSpec::Burst { period, len })
                } else {
                    Err(format!("unknown noise spec `{s}`"))
                }
            }
        }
    }
}

impl fmt::Display for NoiseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Matches the `name()` of the model the spec builds, so specs and
        // live instances agree in reports.
        match *self {
            NoiseSpec::Noiseless => f.write_str("noiseless"),
            NoiseSpec::FullCorruption => f.write_str("full-corruption"),
            NoiseSpec::ConstantOne => f.write_str("constant-one"),
            NoiseSpec::BitFlip { p } => write!(f, "bitflip({p})"),
            NoiseSpec::Omission { drop_per_mille } => write!(f, "omission({drop_per_mille})"),
            NoiseSpec::CrashLink { at_pulse } => write!(f, "crash-link({at_pulse})"),
            NoiseSpec::Burst { period, len } => write!(f, "burst({period},{len})"),
        }
    }
}

/// A scheduler, as data — see [`NoiseSpec`] for the rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerSpec {
    /// Seeded uniform choice ([`RandomScheduler`]).
    Random,
    /// Global send order ([`FifoScheduler`]).
    Fifo,
    /// Newest first ([`LifoScheduler`]).
    Lifo,
}

impl SchedulerSpec {
    /// All schedulers expressible without extra parameters.
    pub const ALL: [SchedulerSpec; 3] = [
        SchedulerSpec::Random,
        SchedulerSpec::Fifo,
        SchedulerSpec::Lifo,
    ];

    /// Builds a fresh scheduler instance for one run.
    pub fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        match *self {
            SchedulerSpec::Random => Box::new(RandomScheduler::new(seed)),
            SchedulerSpec::Fifo => Box::new(FifoScheduler),
            SchedulerSpec::Lifo => Box::new(LifoScheduler),
        }
    }

    /// The stable textual form; [`SchedulerSpec::parse`] is the inverse.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Parses a label produced by [`SchedulerSpec::label`].
    ///
    /// # Errors
    ///
    /// Returns a description of the problem on unknown names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "random" => Ok(SchedulerSpec::Random),
            "fifo" => Ok(SchedulerSpec::Fifo),
            "lifo" => Ok(SchedulerSpec::Lifo),
            other => Err(format!("unknown scheduler spec `{other}`")),
        }
    }
}

impl fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SchedulerSpec::Random => f.write_str("random"),
            SchedulerSpec::Fifo => f.write_str("fifo"),
            SchedulerSpec::Lifo => f.write_str("lifo"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;
    use fdn_graph::NodeId;

    fn env() -> Envelope {
        Envelope {
            from: NodeId(0),
            to: NodeId(1),
            payload: vec![7, 7].into(),
            seq: 0,
        }
    }

    #[test]
    fn noise_spec_builds_matching_models() {
        assert_eq!(NoiseSpec::Noiseless.build(0).corrupt(&env()), vec![7, 7]);
        assert_eq!(NoiseSpec::ConstantOne.build(0).corrupt(&env()), vec![1]);
        let out = NoiseSpec::FullCorruption.build(3).corrupt(&env());
        assert!(!out.is_empty() && out.len() <= 8);
        assert_eq!(
            NoiseSpec::BitFlip { p: 0.0 }.build(1).corrupt(&env()),
            vec![7, 7]
        );
    }

    #[test]
    fn noise_spec_same_seed_same_stream() {
        let mut a = NoiseSpec::FullCorruption.build(9);
        let mut b = NoiseSpec::FullCorruption.build(9);
        for _ in 0..20 {
            assert_eq!(a.corrupt(&env()), b.corrupt(&env()));
        }
    }

    #[test]
    fn noise_spec_label_roundtrip() {
        for spec in [
            NoiseSpec::Noiseless,
            NoiseSpec::FullCorruption,
            NoiseSpec::ConstantOne,
            NoiseSpec::BitFlip { p: 0.25 },
            NoiseSpec::Omission {
                drop_per_mille: 125,
            },
            NoiseSpec::CrashLink { at_pulse: 17 },
            NoiseSpec::Burst { period: 6, len: 2 },
        ] {
            assert_eq!(NoiseSpec::parse(&spec.label()).unwrap(), spec);
        }
        for spec in NoiseSpec::DELETION {
            assert_eq!(NoiseSpec::parse(&spec.label()).unwrap(), spec);
        }
        assert!(NoiseSpec::parse("gaussian").is_err());
        assert!(NoiseSpec::parse("bitflip(2.0)").is_err());
        assert!(NoiseSpec::parse("bitflip(x)").is_err());
        assert!(NoiseSpec::parse("omission(1001)").is_err());
        assert!(NoiseSpec::parse("omission(x)").is_err());
        assert!(NoiseSpec::parse("crash-link(soon)").is_err());
        assert!(NoiseSpec::parse("burst(4)").is_err());
        assert!(NoiseSpec::parse("burst(0,0)").is_err());
        assert!(NoiseSpec::parse("burst(2,3)").is_err());
    }

    #[test]
    fn deletion_specs_build_deleting_models_and_alteration_specs_do_not() {
        for spec in NoiseSpec::DELETION {
            assert!(spec.deletes());
        }
        for spec in NoiseSpec::BASIC {
            assert!(!spec.deletes());
            assert!(spec.build(1).deliver(&env()).is_some());
        }
        assert!(!NoiseSpec::BitFlip { p: 0.5 }.deletes());
        // omission(1000) deletes everything; burst(1,1) deletes everything;
        // crash-link(0) deletes the very first delivery.
        let mut all = NoiseSpec::Omission {
            drop_per_mille: 1000,
        }
        .build(3);
        assert!(all.deliver(&env()).is_none());
        let mut burst = NoiseSpec::Burst { period: 1, len: 1 }.build(3);
        assert!(burst.deliver(&env()).is_none());
        let mut crash = NoiseSpec::CrashLink { at_pulse: 0 }.build(3);
        assert!(crash.deliver(&env()).is_none());
    }

    #[test]
    fn noise_labels_match_model_names() {
        for spec in [
            NoiseSpec::Noiseless,
            NoiseSpec::FullCorruption,
            NoiseSpec::ConstantOne,
        ] {
            assert_eq!(spec.label(), spec.build(0).name());
        }
        assert_eq!(NoiseSpec::BitFlip { p: 0.5 }.build(0).name(), "bit-flip");
    }

    #[test]
    fn scheduler_spec_builds_and_roundtrips() {
        let g = fdn_graph::generators::cycle(3).unwrap();
        let mut links = crate::links::LinkTable::new(&g);
        let (oldest, _) = links.push(Envelope {
            from: NodeId(0),
            to: NodeId(1),
            payload: vec![1].into(),
            seq: 5,
        });
        let (newest, _) = links.push(Envelope {
            from: NodeId(1),
            to: NodeId(2),
            payload: vec![1].into(),
            seq: 6,
        });
        assert_eq!(
            SchedulerSpec::Fifo.build(0).next_link(&links.view()),
            oldest
        );
        assert_eq!(
            SchedulerSpec::Lifo.build(0).next_link(&links.view()),
            newest
        );
        let picked = SchedulerSpec::Random.build(0).next_link(&links.view());
        assert!(links.view().active().contains(&picked));
        for spec in SchedulerSpec::ALL {
            assert_eq!(SchedulerSpec::parse(&spec.label()).unwrap(), spec);
            assert_eq!(spec.label(), spec.build(0).name());
        }
        assert!(SchedulerSpec::parse("priority").is_err());
    }
}
