//! Link-indexed in-flight storage: the event core of the simulator.
//!
//! The first-generation simulator kept every in-flight message in one flat
//! `Vec<Envelope>` that schedulers scanned linearly, so a single scheduling
//! decision cost `O(messages)` — the dominant cost of large Theorem 2 runs,
//! whose pulse traffic keeps hundreds of messages in flight. This module
//! replaces the flat vector with a **link-indexed** structure:
//!
//! * every *directed* adjacency `(u, v)` of the graph is a [`LinkId`],
//!   assigned once at simulation start in node/neighbour order;
//! * each link owns a FIFO queue of envelopes — messages on the same link are
//!   delivered (or deleted) in send order, like a physical wire;
//! * the set of **non-empty** links is maintained incrementally, so a
//!   scheduler picks among `O(active links)` candidates instead of
//!   `O(messages)`, and enqueue/dequeue are `O(1)`.
//!
//! The paper's asynchrony model only promises arbitrary finite delay per
//! message; per-link FIFO is a legal (and realistic) refinement of that
//! model. Cross-link reordering — the part adversarial schedulers actually
//! exploit — is fully preserved: the [`crate::Scheduler`] freely chooses
//! *which* link delivers next.
//!
//! Determinism: link ids, queue contents and the active-set order are pure
//! functions of the event sequence, so seeded runs remain byte-reproducible.

use std::collections::VecDeque;

use fdn_graph::{Graph, NodeId};

use crate::envelope::Envelope;

/// Identifier of a directed link (an ordered pair of adjacent nodes).
///
/// Ids are dense: `0..link_count()`, assigned in node order, neighbours in
/// graph adjacency order — a pure function of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Sentinel for "not in the active list".
const INACTIVE: usize = usize::MAX;

/// Per-directed-edge FIFO queues plus an incrementally-maintained set of
/// non-empty links. See the [module docs](self) for the design rationale.
#[derive(Debug, Clone)]
pub struct LinkTable {
    /// `(from, to)` endpoints per link id.
    ends: Vec<(NodeId, NodeId)>,
    /// Per source node: `(to, link)` pairs sorted by `to`, for id lookup.
    from_index: Vec<Vec<(NodeId, LinkId)>>,
    /// FIFO queue per link.
    queues: Vec<VecDeque<Envelope>>,
    /// The non-empty links. Order is deterministic (activation order, with
    /// swap-remove compaction) but otherwise unspecified; schedulers must not
    /// read meaning into positions.
    active: Vec<LinkId>,
    /// Position of each link in `active`, or [`INACTIVE`].
    active_pos: Vec<usize>,
    /// Total messages in flight across all links.
    total: usize,
}

impl LinkTable {
    /// Builds the (empty) link table of `graph`: one link per directed
    /// adjacency.
    pub fn new(graph: &Graph) -> Self {
        let mut ends = Vec::new();
        let mut from_index = Vec::with_capacity(graph.node_count());
        for u in graph.nodes() {
            let mut row: Vec<(NodeId, LinkId)> = graph
                .neighbors(u)
                .iter()
                .map(|&v| {
                    let id = LinkId(ends.len() as u32);
                    ends.push((u, v));
                    (v, id)
                })
                .collect();
            row.sort_unstable_by_key(|&(to, _)| to);
            from_index.push(row);
        }
        let links = ends.len();
        LinkTable {
            ends,
            from_index,
            queues: vec![VecDeque::new(); links],
            active: Vec::new(),
            active_pos: vec![INACTIVE; links],
            total: 0,
        }
    }

    /// Number of directed links (twice the undirected edge count).
    pub fn link_count(&self) -> usize {
        self.ends.len()
    }

    /// The `(from, to)` endpoints of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn ends(&self, link: LinkId) -> (NodeId, NodeId) {
        self.ends[link.index()]
    }

    /// The link carrying messages from `from` to `to`, if the graph has that
    /// adjacency.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        let row = self.from_index.get(from.index())?;
        row.binary_search_by_key(&to, |&(t, _)| t)
            .ok()
            .map(|i| row[i].1)
    }

    /// Enqueues an envelope on its link's FIFO queue. Returns the link and
    /// the queue depth *after* the push (for high-water accounting).
    ///
    /// # Panics
    ///
    /// Panics if the envelope's `(from, to)` is not an adjacency of the
    /// graph; [`crate::Simulation`] validates sends before queueing.
    pub fn push(&mut self, env: Envelope) -> (LinkId, usize) {
        let link = self
            .link_between(env.from, env.to)
            .expect("envelope on a non-existent link");
        let q = &mut self.queues[link.index()];
        q.push_back(env);
        if q.len() == 1 {
            self.active_pos[link.index()] = self.active.len();
            self.active.push(link);
        }
        self.total += 1;
        (link, self.queues[link.index()].len())
    }

    /// The oldest in-flight envelope on `link`, if any.
    pub fn head(&self, link: LinkId) -> Option<&Envelope> {
        self.queues.get(link.index()).and_then(VecDeque::front)
    }

    /// Dequeues the oldest envelope of `link` (FIFO), maintaining the active
    /// set. Returns `None` if the link is empty or out of range.
    pub fn pop(&mut self, link: LinkId) -> Option<Envelope> {
        let q = self.queues.get_mut(link.index())?;
        let env = q.pop_front()?;
        if q.is_empty() {
            let pos = self.active_pos[link.index()];
            debug_assert_ne!(pos, INACTIVE, "active set out of sync");
            self.active.swap_remove(pos);
            self.active_pos[link.index()] = INACTIVE;
            if let Some(&moved) = self.active.get(pos) {
                self.active_pos[moved.index()] = pos;
            }
        }
        self.total -= 1;
        Some(env)
    }

    /// Messages currently queued on `link`.
    pub fn queue_len(&self, link: LinkId) -> usize {
        self.queues.get(link.index()).map_or(0, VecDeque::len)
    }

    /// The non-empty links, in deterministic (but unspecified) order.
    pub fn active(&self) -> &[LinkId] {
        &self.active
    }

    /// Total messages in flight across all links.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether no message is in flight.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Empties every queue and the active set, keeping the link registry
    /// (ids, endpoints, lookup index) intact. This is what lets a simulation
    /// be warm-started over the same topology without re-registering links:
    /// registration sorts every node's adjacency row, while clearing only
    /// drops queue contents.
    pub fn clear(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        for pos in &mut self.active_pos {
            *pos = INACTIVE;
        }
        self.active.clear();
        self.total = 0;
    }

    /// A read-only view for schedulers.
    pub fn view(&self) -> LinkView<'_> {
        LinkView { table: self }
    }
}

/// What a [`crate::Scheduler`] sees when asked to pick the next delivery: the
/// non-empty links, their head envelopes and queue depths. Borrowed from the
/// simulation's [`LinkTable`] for the duration of one decision.
#[derive(Debug, Clone, Copy)]
pub struct LinkView<'a> {
    table: &'a LinkTable,
}

impl<'a> LinkView<'a> {
    /// The non-empty links. Guaranteed non-empty when handed to
    /// [`crate::Scheduler::next_link`].
    pub fn active(&self) -> &'a [LinkId] {
        self.table.active()
    }

    /// The oldest (next-to-deliver) envelope on an active link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is empty — schedulers only see active links.
    pub fn head(&self, link: LinkId) -> &'a Envelope {
        self.table.head(link).expect("head of an empty link")
    }

    /// Messages queued on `link`.
    pub fn queue_len(&self, link: LinkId) -> usize {
        self.table.queue_len(link)
    }

    /// The `(from, to)` endpoints of `link`.
    pub fn ends(&self, link: LinkId) -> (NodeId, NodeId) {
        self.table.ends(link)
    }

    /// Total messages in flight.
    pub fn total(&self) -> usize {
        self.table.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdn_graph::generators;

    fn env(from: u32, to: u32, seq: u64) -> Envelope {
        Envelope {
            from: NodeId(from),
            to: NodeId(to),
            payload: vec![seq as u8],
            seq,
        }
    }

    #[test]
    fn link_ids_cover_every_directed_adjacency() {
        let g = generators::cycle(4).unwrap();
        let t = LinkTable::new(&g);
        assert_eq!(t.link_count(), 2 * g.edge_count());
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                let l = t.link_between(u, v).unwrap();
                assert_eq!(t.ends(l), (u, v));
            }
        }
        // Opposite directions are distinct links.
        let a = t.link_between(NodeId(0), NodeId(1)).unwrap();
        let b = t.link_between(NodeId(1), NodeId(0)).unwrap();
        assert_ne!(a, b);
        // Non-adjacent pairs have no link.
        assert_eq!(t.link_between(NodeId(0), NodeId(2)), None);
        assert_eq!(t.link_between(NodeId(9), NodeId(0)), None);
    }

    #[test]
    fn push_pop_preserves_fifo_per_link() {
        let g = generators::cycle(4).unwrap();
        let mut t = LinkTable::new(&g);
        let (l01, d1) = t.push(env(0, 1, 1));
        let (same, d2) = t.push(env(0, 1, 2));
        assert_eq!(l01, same);
        assert_eq!((d1, d2), (1, 2));
        t.push(env(1, 2, 3));
        assert_eq!(t.total(), 3);
        assert_eq!(t.active().len(), 2);
        assert_eq!(t.head(l01).unwrap().seq, 1);
        assert_eq!(t.pop(l01).unwrap().seq, 1);
        assert_eq!(t.pop(l01).unwrap().seq, 2);
        assert_eq!(t.pop(l01), None);
        assert_eq!(t.total(), 1);
        assert_eq!(t.active().len(), 1);
    }

    #[test]
    fn active_set_tracks_empty_and_non_empty_links() {
        let g = generators::cycle(5).unwrap();
        let mut t = LinkTable::new(&g);
        assert!(t.is_empty());
        assert!(t.active().is_empty());
        let (a, _) = t.push(env(0, 1, 0));
        let (b, _) = t.push(env(1, 2, 1));
        let (c, _) = t.push(env(2, 3, 2));
        assert_eq!(t.active(), &[a, b, c]);
        // Draining the *first* active link swap-removes: c takes its slot.
        t.pop(a).unwrap();
        assert_eq!(t.active(), &[c, b]);
        // Re-activation appends at the end again.
        t.push(env(0, 1, 3));
        assert_eq!(t.active(), &[c, b, a]);
        t.pop(c).unwrap();
        t.pop(b).unwrap();
        t.pop(a).unwrap();
        assert!(t.is_empty());
        assert!(t.active().is_empty());
    }

    #[test]
    fn view_exposes_heads_depths_and_ends() {
        let g = generators::cycle(4).unwrap();
        let mut t = LinkTable::new(&g);
        let (l, _) = t.push(env(2, 1, 7));
        t.push(env(2, 1, 8));
        let view = t.view();
        assert_eq!(view.active(), &[l]);
        assert_eq!(view.head(l).seq, 7);
        assert_eq!(view.queue_len(l), 2);
        assert_eq!(view.ends(l), (NodeId(2), NodeId(1)));
        assert_eq!(view.total(), 2);
    }

    #[test]
    #[should_panic(expected = "non-existent link")]
    fn push_on_missing_adjacency_panics() {
        let g = generators::cycle(4).unwrap();
        let mut t = LinkTable::new(&g);
        t.push(env(0, 2, 0));
    }
}
