//! Deterministic asynchronous message-passing network simulator.
//!
//! This crate is the execution substrate for the reproduction of
//! *Distributed Computations in Fully-Defective Networks* (PODC 2022). It
//! models exactly the communication environment of the paper's Section 2:
//!
//! * every link is bidirectional and delivers each sent message after an
//!   **arbitrary finite delay** (modelled by a pluggable [`Scheduler`] that
//!   picks which non-empty link delivers its oldest message next);
//! * the paper's channels are **not FIFO**; this engine implements the legal
//!   refinement in which each *directed link* is a FIFO wire while the
//!   scheduler reorders freely **across** links. In-flight messages live in a
//!   link-indexed event core ([`LinkTable`]): one queue per directed edge and
//!   an incrementally-maintained non-empty set, so scheduling is `O(active
//!   links)` — `O(1)` for the default [`RandomScheduler`] — instead of the
//!   `O(messages)` flat scan of the first-generation engine. The per-link
//!   queues come in two behaviourally-identical representations selected by
//!   [`LinkStore`]: the exact reference backend, and a counting backend that
//!   run-length-encodes the protocol's identical-pulse traffic so a link
//!   carrying a million pulses costs one stored run (see [`links`]);
//! * the channel noise is **alteration noise**: a [`NoiseModel`] may rewrite
//!   the content of every message arbitrarily, but can neither delete nor
//!   inject messages — a *fully-defective* network corrupts everything.
//!   Deletion-side adversaries ([`Omission`], [`CrashLink`], [`Burst`])
//!   deliberately violate that contract to measure where the paper's
//!   construction breaks once deletion is allowed;
//! * nodes are event-driven state machines ([`Reactor`]): they act on start
//!   and on every message reception.
//!
//! The crate also defines the [`InnerProtocol`] trait — the asynchronous
//! black-box interface `π` that the paper's simulators wrap — together with
//! [`DirectRunner`], which executes an inner protocol directly on a noiseless
//! network and serves as the ground-truth baseline for the equivalence
//! experiments.
//!
//! # Example
//!
//! ```
//! use fdn_graph::{generators, NodeId};
//! use fdn_netsim::{Simulation, Reactor, Context};
//!
//! /// Each node forwards a token once and stops.
//! struct Relay { fired: bool }
//! impl Reactor for Relay {
//!     fn on_start(&mut self, ctx: &mut Context) {
//!         if ctx.node() == NodeId(0) {
//!             ctx.send(NodeId(1), vec![1]);
//!         }
//!     }
//!     fn on_message(&mut self, _from: NodeId, _payload: &[u8], ctx: &mut Context) {
//!         if !self.fired {
//!             self.fired = true;
//!             let next = NodeId((ctx.node().0 + 1) % 4);
//!             if next != NodeId(0) {
//!                 ctx.send(next, vec![1]);
//!             }
//!         }
//!     }
//! }
//!
//! let g = generators::cycle(4).unwrap();
//! let nodes = (0..4).map(|_| Relay { fired: false }).collect();
//! let mut sim = Simulation::new(g, nodes).unwrap();
//! let report = sim.run().unwrap();
//! assert!(report.quiescent);
//! assert_eq!(sim.stats().sent_total, 3);
//! ```

pub mod envelope;
pub mod error;
pub mod links;
pub mod noise;
pub mod observer;
pub mod protocol;
pub mod reactor;
pub mod scheduler;
pub mod sim;
pub mod spec;
pub mod stats;
pub mod transcript;

pub use envelope::{Envelope, Payload};
pub use error::SimError;
pub use links::{LinkId, LinkStore, LinkTable, LinkView};
pub use noise::{
    BitFlip, Burst, ConstantOne, CrashLink, FullCorruption, NoiseModel, Noiseless, Omission,
    TargetedEdges, OMISSION_DENOM,
};
pub use observer::{
    NullObserver, Observer, PhaseEvent, PhaseMarker, Sample, SpanProfiler, SpanStats,
    TimeSeriesSampler, DEFAULT_SAMPLE_CAPACITY,
};
pub use protocol::{Dest, DirectRunner, InnerProtocol, ProtocolIo, ProtocolMsg};
pub use reactor::{Context, Reactor};
pub use scheduler::{EdgeDelayScheduler, FifoScheduler, LifoScheduler, RandomScheduler, Scheduler};
pub use sim::{RunReport, Simulation};
pub use spec::{NoiseSpec, SchedulerSpec};
pub use stats::{Stats, StatsSnapshot};
pub use transcript::{Transcript, TranscriptEvent};
