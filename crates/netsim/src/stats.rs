//! Communication accounting.
//!
//! The paper's complexity measures count the number and total length of
//! *sent* messages (pulses), before any corruption: `CCinit` for the
//! pre-processing phase and `CCoverhead(m)` per simulated message. The
//! simulator tracks exactly those quantities, per node and per edge.

use std::collections::HashMap;

use fdn_graph::graph::Edge;
use fdn_graph::NodeId;

use crate::envelope::Envelope;

/// Counters maintained by a [`crate::Simulation`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total messages (pulses) sent.
    pub sent_total: u64,
    /// Total messages delivered so far.
    pub delivered_total: u64,
    /// Total payload bits sent (the paper's `CC` counts bits of sent
    /// messages).
    pub bits_sent: u64,
    /// Messages sent per undirected edge.
    pub per_edge_sent: HashMap<Edge, u64>,
    /// Messages sent per node (indexed by node id).
    pub per_node_sent: Vec<u64>,
}

impl Stats {
    /// Creates zeroed counters for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Stats { per_node_sent: vec![0; n], ..Default::default() }
    }

    /// Records a send.
    pub fn record_send(&mut self, env: &Envelope) {
        self.sent_total += 1;
        self.bits_sent += env.bits();
        *self.per_edge_sent.entry(Edge::new(env.from, env.to)).or_insert(0) += 1;
        if let Some(slot) = self.per_node_sent.get_mut(env.from.index()) {
            *slot += 1;
        }
    }

    /// Records a delivery.
    pub fn record_delivery(&mut self) {
        self.delivered_total += 1;
    }

    /// Messages sent by a specific node.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.per_node_sent.get(node.index()).copied().unwrap_or(0)
    }

    /// Messages sent over a specific undirected edge (both directions).
    pub fn sent_on_edge(&self, e: Edge) -> u64 {
        self.per_edge_sent.get(&e).copied().unwrap_or(0)
    }

    /// The maximum number of messages sent by any single node.
    pub fn max_sent_by_node(&self) -> u64 {
        self.per_node_sent.iter().copied().max().unwrap_or(0)
    }

    /// Difference of the counters in `self` relative to an earlier snapshot
    /// (used to measure the cost of a single phase, e.g. `CCoverhead` of one
    /// message).
    pub fn since(&self, earlier: &Stats) -> Stats {
        let mut per_edge = HashMap::new();
        for (e, v) in &self.per_edge_sent {
            let before = earlier.per_edge_sent.get(e).copied().unwrap_or(0);
            if *v > before {
                per_edge.insert(*e, v - before);
            }
        }
        Stats {
            sent_total: self.sent_total - earlier.sent_total,
            delivered_total: self.delivered_total - earlier.delivered_total,
            bits_sent: self.bits_sent - earlier.bits_sent,
            per_edge_sent: per_edge,
            per_node_sent: self
                .per_node_sent
                .iter()
                .zip(earlier.per_node_sent.iter().chain(std::iter::repeat(&0)))
                .map(|(now, before)| now - before)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: u32, to: u32, len: usize) -> Envelope {
        Envelope { from: NodeId(from), to: NodeId(to), payload: vec![0; len], seq: 0 }
    }

    #[test]
    fn record_and_query() {
        let mut s = Stats::new(3);
        s.record_send(&env(0, 1, 2));
        s.record_send(&env(1, 0, 1));
        s.record_send(&env(1, 2, 1));
        s.record_delivery();
        assert_eq!(s.sent_total, 3);
        assert_eq!(s.delivered_total, 1);
        assert_eq!(s.bits_sent, 32);
        assert_eq!(s.sent_by(NodeId(1)), 2);
        assert_eq!(s.sent_by(NodeId(9)), 0);
        assert_eq!(s.sent_on_edge(Edge::new(NodeId(0), NodeId(1))), 2);
        assert_eq!(s.sent_on_edge(Edge::new(NodeId(0), NodeId(2))), 0);
        assert_eq!(s.max_sent_by_node(), 2);
    }

    #[test]
    fn since_computes_difference() {
        let mut s = Stats::new(2);
        s.record_send(&env(0, 1, 1));
        let snapshot = s.clone();
        s.record_send(&env(0, 1, 1));
        s.record_send(&env(1, 0, 3));
        s.record_delivery();
        let d = s.since(&snapshot);
        assert_eq!(d.sent_total, 2);
        assert_eq!(d.delivered_total, 1);
        assert_eq!(d.bits_sent, 32);
        assert_eq!(d.sent_by(NodeId(0)), 1);
        assert_eq!(d.sent_on_edge(Edge::new(NodeId(0), NodeId(1))), 2);
    }

    #[test]
    fn default_is_zero() {
        let s = Stats::default();
        assert_eq!(s.sent_total, 0);
        assert_eq!(s.max_sent_by_node(), 0);
    }
}
