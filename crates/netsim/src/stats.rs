//! Communication accounting.
//!
//! The paper's complexity measures count the number and total length of
//! *sent* messages (pulses), before any corruption: `CCinit` for the
//! pre-processing phase and `CCoverhead(m)` per simulated message. The
//! simulator tracks exactly those quantities, per node and per edge.

// fdn-lint: allow(D2) -- live counters only; every export path sorts into StatsSnapshot first
use std::collections::HashMap;

use fdn_graph::graph::Edge;
use fdn_graph::NodeId;

use crate::envelope::Envelope;

/// Counters maintained by a [`crate::Simulation`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total messages (pulses) sent.
    pub sent_total: u64,
    /// Total messages delivered so far.
    pub delivered_total: u64,
    /// Total messages deleted by the noise model (always 0 under the paper's
    /// alteration-only contract; deletion-side adversaries may drop).
    pub dropped_total: u64,
    /// Total payload bits sent (the paper's `CC` counts bits of sent
    /// messages).
    pub bits_sent: u64,
    /// High-water mark of the total number of messages in flight at any
    /// instant of the run (queue-depth observability of the link-indexed
    /// event core). Cumulative over the whole run: unlike the send/delivery
    /// counters it is *not* differenced by [`Stats::since`].
    pub max_inflight: u64,
    /// Per-directed-link high-water mark of the link's FIFO queue depth.
    /// Cumulative over the whole run, like [`Stats::max_inflight`].
    // fdn-lint: allow(D2) -- keyed updates only; snapshot() sorts before export
    pub per_link_high_water: HashMap<(NodeId, NodeId), u64>,
    /// Messages sent per undirected edge.
    // fdn-lint: allow(D2) -- keyed updates only; snapshot() sorts before export
    pub per_edge_sent: HashMap<Edge, u64>,
    /// Messages sent per node (indexed by node id).
    pub per_node_sent: Vec<u64>,
}

impl Stats {
    /// Creates zeroed counters for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Stats {
            per_node_sent: vec![0; n],
            ..Default::default()
        }
    }

    /// Records a send.
    pub fn record_send(&mut self, env: &Envelope) {
        self.sent_total += 1;
        self.bits_sent += env.bits();
        *self
            .per_edge_sent
            .entry(Edge::new(env.from, env.to))
            .or_insert(0) += 1;
        if let Some(slot) = self.per_node_sent.get_mut(env.from.index()) {
            *slot += 1;
        }
    }

    /// Records a delivery.
    pub fn record_delivery(&mut self) {
        self.delivered_total += 1;
    }

    /// Records a message deleted by the noise model.
    pub fn record_drop(&mut self) {
        self.dropped_total += 1;
    }

    /// Records the queue depth observed right after an enqueue: `link_depth`
    /// messages on the directed link `from -> to`, `total_inflight` across
    /// the whole network. Maintains the high-water marks.
    pub fn record_queue_depth(
        &mut self,
        from: NodeId,
        to: NodeId,
        link_depth: u64,
        total_inflight: u64,
    ) {
        self.max_inflight = self.max_inflight.max(total_inflight);
        let hw = self.per_link_high_water.entry((from, to)).or_insert(0);
        *hw = (*hw).max(link_depth);
    }

    /// Messages sent by a specific node.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.per_node_sent.get(node.index()).copied().unwrap_or(0)
    }

    /// Messages sent over a specific undirected edge (both directions).
    pub fn sent_on_edge(&self, e: Edge) -> u64 {
        self.per_edge_sent.get(&e).copied().unwrap_or(0)
    }

    /// The maximum number of messages sent by any single node.
    pub fn max_sent_by_node(&self) -> u64 {
        self.per_node_sent.iter().copied().max().unwrap_or(0)
    }

    /// Freezes the counters into a cheap, ordered, aggregation-friendly
    /// [`StatsSnapshot`] (per-edge counters sorted by edge, so two snapshots
    /// of equal runs are equal values and serialize identically).
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut per_edge_sent: Vec<(Edge, u64)> =
            self.per_edge_sent.iter().map(|(e, c)| (*e, *c)).collect();
        per_edge_sent.sort_unstable();
        let mut per_link_high_water: Vec<((NodeId, NodeId), u64)> = self
            .per_link_high_water
            .iter()
            .map(|(l, c)| (*l, *c))
            .collect();
        per_link_high_water.sort_unstable();
        StatsSnapshot {
            sent_total: self.sent_total,
            delivered_total: self.delivered_total,
            dropped_total: self.dropped_total,
            bits_sent: self.bits_sent,
            max_inflight: self.max_inflight,
            per_node_sent: self.per_node_sent.clone(),
            per_edge_sent,
            per_link_high_water,
        }
    }

    /// Difference of the counters in `self` relative to an earlier snapshot
    /// (used to measure the cost of a single phase, e.g. `CCoverhead` of one
    /// message). High-water marks (`max_inflight`, `per_link_high_water`)
    /// are run-cumulative, not phase-differencible, so the later values are
    /// carried through unchanged.
    pub fn since(&self, earlier: &Stats) -> Stats {
        // fdn-lint: allow(D2) -- value-keyed difference of two maps; insertion order cannot leak
        let mut per_edge = HashMap::new();
        // fdn-lint: allow(F2) -- map-to-map difference keyed by the same edges; iteration order cannot reach rendered bytes (snapshot() sorts)
        for (e, v) in &self.per_edge_sent {
            let before = earlier.per_edge_sent.get(e).copied().unwrap_or(0);
            if *v > before {
                per_edge.insert(*e, v - before);
            }
        }
        Stats {
            sent_total: self.sent_total - earlier.sent_total,
            delivered_total: self.delivered_total - earlier.delivered_total,
            dropped_total: self.dropped_total - earlier.dropped_total,
            bits_sent: self.bits_sent - earlier.bits_sent,
            max_inflight: self.max_inflight,
            per_link_high_water: self.per_link_high_water.clone(),
            per_edge_sent: per_edge,
            per_node_sent: self
                .per_node_sent
                .iter()
                .zip(earlier.per_node_sent.iter().chain(std::iter::repeat(&0)))
                .map(|(now, before)| now - before)
                .collect(),
        }
    }
}

/// A frozen, ordered view of a [`Stats`] at one instant.
///
/// Unlike [`Stats`] (whose per-edge map has nondeterministic iteration
/// order), a snapshot is a plain value: `Clone`/`PartialEq`/`Eq`, per-edge
/// counters sorted by edge, and therefore safe to diff, aggregate across
/// parallel runs, and serialize byte-identically. This is the type report
/// aggregation consumes instead of copying counters field by field.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total messages (pulses) sent.
    pub sent_total: u64,
    /// Total messages delivered.
    pub delivered_total: u64,
    /// Total messages deleted by the noise model.
    pub dropped_total: u64,
    /// Total payload bits sent.
    pub bits_sent: u64,
    /// High-water mark of messages simultaneously in flight (run-cumulative).
    pub max_inflight: u64,
    /// Messages sent per node (indexed by node id).
    pub per_node_sent: Vec<u64>,
    /// Messages sent per undirected edge, sorted by edge.
    pub per_edge_sent: Vec<(Edge, u64)>,
    /// Per-directed-link FIFO queue-depth high-water marks, sorted by link
    /// (run-cumulative).
    pub per_link_high_water: Vec<((NodeId, NodeId), u64)>,
}

impl StatsSnapshot {
    /// The maximum number of messages sent by any single node.
    pub fn max_sent_by_node(&self) -> u64 {
        self.per_node_sent.iter().copied().max().unwrap_or(0)
    }

    /// The deepest per-link FIFO queue observed at any instant of the run.
    pub fn max_link_high_water(&self) -> u64 {
        self.per_link_high_water
            .iter() // fdn-lint: allow(F2) -- sorted Vec field (shares its name with Stats' HashMap); order-independent max fold besides
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0)
    }

    /// The heaviest per-edge load (messages on the busiest edge).
    pub fn max_sent_on_edge(&self) -> u64 {
        self.per_edge_sent
            .iter() // fdn-lint: allow(F2) -- sorted Vec field (shares its name with Stats' HashMap); order-independent max fold besides
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0)
    }

    /// Per-counter difference relative to an `earlier` snapshot of the same
    /// run (edges that did not change are omitted). High-water marks are
    /// run-cumulative and carried through unchanged, as in [`Stats::since`].
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut per_edge_sent = Vec::new();
        // fdn-lint: allow(F2) -- both operands are the sorted Vec field of StatsSnapshot (name shared with Stats' HashMap); merge order is the sorted order
        let mut before = earlier.per_edge_sent.iter().copied().peekable();
        // fdn-lint: allow(F2) -- sorted Vec field of StatsSnapshot, not a map; see above
        for &(e, now) in &self.per_edge_sent {
            let mut prev = 0;
            while let Some(&(be, bc)) = before.peek() {
                if be < e {
                    before.next();
                } else {
                    if be == e {
                        prev = bc;
                    }
                    break;
                }
            }
            if now > prev {
                per_edge_sent.push((e, now - prev));
            }
        }
        StatsSnapshot {
            sent_total: self.sent_total - earlier.sent_total,
            delivered_total: self.delivered_total - earlier.delivered_total,
            dropped_total: self.dropped_total - earlier.dropped_total,
            bits_sent: self.bits_sent - earlier.bits_sent,
            max_inflight: self.max_inflight,
            per_node_sent: self
                .per_node_sent
                .iter()
                .zip(earlier.per_node_sent.iter().chain(std::iter::repeat(&0)))
                .map(|(now, before)| now - before)
                .collect(),
            per_edge_sent,
            per_link_high_water: self.per_link_high_water.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: u32, to: u32, len: usize) -> Envelope {
        Envelope {
            from: NodeId(from),
            to: NodeId(to),
            payload: vec![0; len].into(),
            seq: 0,
        }
    }

    #[test]
    fn record_and_query() {
        let mut s = Stats::new(3);
        s.record_send(&env(0, 1, 2));
        s.record_send(&env(1, 0, 1));
        s.record_send(&env(1, 2, 1));
        s.record_delivery();
        assert_eq!(s.sent_total, 3);
        assert_eq!(s.delivered_total, 1);
        assert_eq!(s.bits_sent, 32);
        assert_eq!(s.sent_by(NodeId(1)), 2);
        assert_eq!(s.sent_by(NodeId(9)), 0);
        assert_eq!(s.sent_on_edge(Edge::new(NodeId(0), NodeId(1))), 2);
        assert_eq!(s.sent_on_edge(Edge::new(NodeId(0), NodeId(2))), 0);
        assert_eq!(s.max_sent_by_node(), 2);
    }

    #[test]
    fn since_computes_difference() {
        let mut s = Stats::new(2);
        s.record_send(&env(0, 1, 1));
        let snapshot = s.clone();
        s.record_send(&env(0, 1, 1));
        s.record_send(&env(1, 0, 3));
        s.record_delivery();
        let d = s.since(&snapshot);
        assert_eq!(d.sent_total, 2);
        assert_eq!(d.delivered_total, 1);
        assert_eq!(d.bits_sent, 32);
        assert_eq!(d.sent_by(NodeId(0)), 1);
        assert_eq!(d.sent_on_edge(Edge::new(NodeId(0), NodeId(1))), 2);
    }

    #[test]
    fn default_is_zero() {
        let s = Stats::default();
        assert_eq!(s.sent_total, 0);
        assert_eq!(s.dropped_total, 0);
        assert_eq!(s.max_sent_by_node(), 0);
    }

    #[test]
    fn drops_are_counted_and_diffed() {
        let mut s = Stats::new(2);
        s.record_send(&env(0, 1, 1));
        s.record_drop();
        let first = s.clone();
        s.record_drop();
        s.record_drop();
        assert_eq!(s.dropped_total, 3);
        assert_eq!(s.snapshot().dropped_total, 3);
        assert_eq!(s.since(&first).dropped_total, 2);
        assert_eq!(s.snapshot().since(&first.snapshot()).dropped_total, 2);
    }

    #[test]
    fn snapshot_is_sorted_and_value_equal() {
        let mut s = Stats::new(4);
        // Insert edges in non-sorted order.
        s.record_send(&env(2, 3, 1));
        s.record_send(&env(0, 1, 1));
        s.record_send(&env(1, 2, 1));
        s.record_send(&env(0, 1, 1));
        let snap = s.snapshot();
        assert_eq!(snap.sent_total, 4);
        assert_eq!(snap.max_sent_by_node(), 2);
        let edges: Vec<Edge> = snap.per_edge_sent.iter().map(|&(e, _)| e).collect();
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        assert_eq!(edges, sorted);
        assert_eq!(snap.max_sent_on_edge(), 2);
        // Two snapshots of equal stats are equal values.
        assert_eq!(snap, s.clone().snapshot());
    }

    #[test]
    fn queue_depth_high_water_marks() {
        let mut s = Stats::new(3);
        assert_eq!(s.max_inflight, 0);
        s.record_queue_depth(NodeId(0), NodeId(1), 1, 1);
        s.record_queue_depth(NodeId(0), NodeId(1), 2, 2);
        s.record_queue_depth(NodeId(1), NodeId(0), 1, 3);
        // Depths later shrink; the marks do not.
        s.record_queue_depth(NodeId(0), NodeId(1), 1, 1);
        assert_eq!(s.max_inflight, 3);
        let snap = s.snapshot();
        assert_eq!(snap.max_inflight, 3);
        assert_eq!(
            snap.per_link_high_water,
            vec![((NodeId(0), NodeId(1)), 2), ((NodeId(1), NodeId(0)), 1),]
        );
        assert_eq!(snap.max_link_high_water(), 2);
        // High-water marks are cumulative: `since` carries them through.
        let earlier = Stats::new(3);
        assert_eq!(s.since(&earlier).max_inflight, 3);
        assert_eq!(snap.since(&earlier.snapshot()).max_inflight, 3);
        assert_eq!(snap.since(&earlier.snapshot()).max_link_high_water(), 2);
    }

    #[test]
    fn per_link_high_water_serializes_order_independently() {
        // The live per-link map is an unordered HashMap: the same
        // observations arriving in different orders give maps with
        // different iteration orders. Every render/serialize path must go
        // through the sorted snapshot — two snapshots of order-permuted
        // stats must be equal values AND byte-identical when formatted.
        let obs = [
            ((3u32, 2u32), 5u64),
            ((0, 1), 2),
            ((2, 3), 4),
            ((1, 0), 1),
            ((0, 3), 7),
        ];
        let mut a = Stats::new(4);
        for &((f, t), d) in &obs {
            a.record_queue_depth(NodeId(f), NodeId(t), d, d);
        }
        let mut b = Stats::new(4);
        for &((f, t), d) in obs.iter().rev() {
            b.record_queue_depth(NodeId(f), NodeId(t), d, d);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa, sb);
        assert_eq!(format!("{sa:?}"), format!("{sb:?}"));
        // Serializing twice is also stable byte for byte.
        assert_eq!(format!("{sa:?}"), format!("{:?}", a.snapshot()));
        // And the order is the canonical (from, to).
        let links: Vec<(NodeId, NodeId)> = sa.per_link_high_water.iter().map(|&(l, _)| l).collect();
        let mut sorted = links.clone();
        sorted.sort_unstable();
        assert_eq!(links, sorted);
        assert_eq!(sa.max_link_high_water(), 7);
    }

    #[test]
    fn snapshot_since_diffs_counters() {
        let mut s = Stats::new(3);
        s.record_send(&env(0, 1, 1));
        let first = s.snapshot();
        s.record_send(&env(0, 1, 1));
        s.record_send(&env(1, 2, 2));
        s.record_delivery();
        let d = s.snapshot().since(&first);
        assert_eq!(d.sent_total, 2);
        assert_eq!(d.delivered_total, 1);
        assert_eq!(d.bits_sent, 24);
        assert_eq!(
            d.per_edge_sent,
            vec![
                (Edge::new(NodeId(0), NodeId(1)), 1),
                (Edge::new(NodeId(1), NodeId(2)), 1),
            ]
        );
        // Agrees with the Stats-level diff.
        let mut earlier = Stats::new(3);
        earlier.record_send(&env(0, 1, 1));
        assert_eq!(d, s.since(&earlier).snapshot());
    }
}
