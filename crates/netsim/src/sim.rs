//! The discrete-event simulation engine.

use fdn_graph::{Graph, NodeId};

use crate::envelope::{Envelope, Payload};
use crate::error::SimError;
use crate::links::{LinkStore, LinkTable, LinkView};
use crate::noise::{NoiseModel, Noiseless};
use crate::observer::{NullObserver, Observer, PhaseMarker};
use crate::reactor::{Context, Reactor};
use crate::scheduler::{RandomScheduler, Scheduler};
use crate::stats::Stats;
use crate::transcript::{Transcript, TranscriptEvent};

/// Default bound on the number of deliveries per run; generous enough for all
/// experiments while still catching accidental non-termination.
pub const DEFAULT_MAX_STEPS: u64 = 50_000_000;

/// Summary of one [`Simulation::run_to_quiescence`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Number of scheduler steps performed (deliveries plus messages deleted
    /// by a deletion-side noise model).
    pub steps: u64,
    /// Whether the network reached quiescence (no message in flight).
    pub quiescent: bool,
}

/// A deterministic asynchronous execution of a set of [`Reactor`]s over a
/// communication graph, under a chosen [`Scheduler`] (asynchrony) and
/// [`NoiseModel`] (channel corruption).
///
/// The engine is generic over an [`Observer`] probing its hot path; the
/// default [`NullObserver`] is monomorphized away, so an un-observed
/// simulation is exactly the un-instrumented engine. Attach a probe with
/// [`with_observer`](Self::with_observer).
pub struct Simulation<R, O = NullObserver> {
    graph: Graph,
    nodes: Vec<R>,
    links: LinkTable,
    noise: Box<dyn NoiseModel>,
    scheduler: Box<dyn Scheduler>,
    stats: Stats,
    transcript: Option<Transcript>,
    observer: O,
    next_seq: u64,
    steps: u64,
    max_steps: u64,
    started: bool,
}

impl<R: Reactor> Simulation<R> {
    /// Creates a simulation of `nodes[i]` running at graph node `i`. Defaults:
    /// noiseless channels, seeded random scheduler, no transcript recording.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeCountMismatch`] if `nodes.len()` differs from
    /// the number of graph nodes.
    pub fn new(graph: Graph, nodes: Vec<R>) -> Result<Self, SimError> {
        if graph.node_count() != nodes.len() {
            return Err(SimError::NodeCountMismatch {
                nodes: graph.node_count(),
                reactors: nodes.len(),
            });
        }
        let n = graph.node_count();
        let links = LinkTable::new(&graph);
        Ok(Simulation {
            graph,
            nodes,
            links,
            noise: Box::new(Noiseless),
            scheduler: Box::new(RandomScheduler::new(0)),
            stats: Stats::new(n),
            transcript: None,
            observer: NullObserver,
            next_seq: 0,
            steps: 0,
            max_steps: DEFAULT_MAX_STEPS,
            started: false,
        })
    }

    /// Warm-starts a simulation from an already-registered link table — the
    /// counterpart of [`Simulation::into_parts`], and the fast path for
    /// replaying many runs over one topology: link registration (which sorts
    /// every node's adjacency row) is skipped, the table is merely cleared.
    /// Everything else matches [`Simulation::new`]: fresh counters, default
    /// noise/scheduler/step limit, not yet started.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeCountMismatch`] if `nodes` does not cover the
    /// graph, or [`SimError::LinkCountMismatch`] /
    /// [`SimError::LinkTopologyMismatch`] if `links` was registered for a
    /// different topology (wrong link count, or an equal-sized table missing
    /// one of this graph's adjacencies).
    pub fn from_parts(graph: Graph, mut links: LinkTable, nodes: Vec<R>) -> Result<Self, SimError> {
        if graph.node_count() != nodes.len() {
            return Err(SimError::NodeCountMismatch {
                nodes: graph.node_count(),
                reactors: nodes.len(),
            });
        }
        let directed = 2 * graph.edge_count();
        if links.link_count() != directed {
            return Err(SimError::LinkCountMismatch {
                links: links.link_count(),
                expected: directed,
            });
        }
        // Equal counts are not identity: every adjacency of this graph must
        // have its registered link (with the count equal, this makes the
        // registries bijective), otherwise the first send over a missing
        // link would panic deep in `LinkTable::push` instead of erroring
        // here.
        for u in graph.nodes() {
            for &v in graph.neighbors(u) {
                if links.link_between(u, v).is_none() {
                    return Err(SimError::LinkTopologyMismatch { from: u, to: v });
                }
            }
        }
        links.clear();
        let n = graph.node_count();
        Ok(Simulation {
            graph,
            nodes,
            links,
            noise: Box::new(Noiseless),
            scheduler: Box::new(RandomScheduler::new(0)),
            stats: Stats::new(n),
            transcript: None,
            observer: NullObserver,
            next_seq: 0,
            steps: 0,
            max_steps: DEFAULT_MAX_STEPS,
            started: false,
        })
    }
}

impl<R: Reactor, O: Observer> Simulation<R, O> {
    /// Dismantles the simulation into its reusable topology — the graph and
    /// the link table (registry intact, queues as left by the run) — plus
    /// the reactors, which keep whatever state the run drove them into.
    /// The counterpart of [`Simulation::from_parts`]. Any attached observer
    /// is dropped; retrieve it first with
    /// [`into_observer`](Self::into_observer) if its data matters.
    pub fn into_parts(self) -> (Graph, LinkTable, Vec<R>) {
        (self.graph, self.links, self.nodes)
    }

    /// Attaches an [`Observer`] (builder style), replacing the current one.
    /// Must be called before the run starts: the observer's
    /// [`on_attach`](Observer::on_attach) fires at [`start`](Self::start).
    pub fn with_observer<O2: Observer>(self, observer: O2) -> Simulation<R, O2> {
        Simulation {
            graph: self.graph,
            nodes: self.nodes,
            links: self.links,
            noise: self.noise,
            scheduler: self.scheduler,
            stats: self.stats,
            transcript: self.transcript,
            observer,
            next_seq: self.next_seq,
            steps: self.steps,
            max_steps: self.max_steps,
            started: self.started,
        }
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Consumes the simulation and returns the observer with everything it
    /// recorded.
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Replaces the noise model (builder style).
    pub fn with_noise(mut self, noise: impl NoiseModel + 'static) -> Self {
        self.noise = Box::new(noise);
        self
    }

    /// Replaces the noise model with an already-boxed instance, as produced
    /// by [`crate::NoiseSpec::build`] (builder style).
    pub fn with_noise_boxed(mut self, noise: Box<dyn NoiseModel>) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces the scheduler (builder style).
    pub fn with_scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Replaces the scheduler with an already-boxed instance, as produced by
    /// [`crate::SchedulerSpec::build`] (builder style).
    pub fn with_scheduler_boxed(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the delivery limit for [`run_to_quiescence`](Self::run_to_quiescence).
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Selects the per-link queue representation (builder style): the exact
    /// reference backend or the counting (run-length-encoded) backend. The
    /// two are behaviourally indistinguishable — transcripts, statistics and
    /// observer curves are byte-identical (see [`crate::links`]) — so this
    /// only changes the engine's cost profile. Must be called before the run
    /// starts: switching discards queued envelopes.
    pub fn with_link_store(mut self, store: LinkStore) -> Self {
        debug_assert!(!self.started, "link store chosen after the run started");
        self.links.convert_store(store);
        self
    }

    /// The per-link queue representation in use.
    pub fn link_store(&self) -> LinkStore {
        self.links.store()
    }

    /// Stored queue entries inserted/removed by the event core so far — the
    /// backend cost measure (see [`crate::links`] and the `counting_core`
    /// bench).
    pub fn link_queue_ops(&self) -> u64 {
        self.links.queue_ops()
    }

    /// Enables transcript recording (off by default; transcripts of long runs
    /// can be large).
    pub fn with_transcript(mut self) -> Self {
        self.transcript = Some(Transcript::new());
        self
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Read access to the reactor at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node(&self, node: NodeId) -> &R {
        &self.nodes[node.index()]
    }

    /// All reactors, indexed by node id.
    pub fn nodes(&self) -> &[R] {
        &self.nodes
    }

    /// Communication counters accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The recorded transcript, if recording was enabled.
    pub fn transcript(&self) -> Option<&Transcript> {
        self.transcript.as_ref()
    }

    /// Number of messages currently in flight.
    pub fn inflight_count(&self) -> usize {
        self.links.total()
    }

    /// Read-only view of the link-indexed event core: the non-empty links,
    /// their queue depths and head envelopes.
    pub fn link_view(&self) -> LinkView<'_> {
        self.links.view()
    }

    /// Whether no message is in flight (and the run has started).
    pub fn is_quiescent(&self) -> bool {
        self.started && self.links.is_empty()
    }

    /// The outputs of all nodes, indexed by node id.
    pub fn outputs(&self) -> Vec<Option<Vec<u8>>> {
        self.nodes.iter().map(Reactor::output).collect()
    }

    /// Invokes every reactor's `on_start` (in node-id order) and queues the
    /// messages they emit. Idempotent: a second call does nothing.
    ///
    /// # Errors
    ///
    /// Returns an error if a reactor emits an invalid message.
    pub fn start(&mut self) -> Result<(), SimError> {
        if self.started {
            return Ok(());
        }
        self.started = true;
        self.observer
            .on_attach(self.nodes.len(), self.links.link_count());
        for id in 0..self.nodes.len() {
            let node = NodeId(id as u32);
            let neighbors = self.graph.neighbors(node).to_vec();
            let mut ctx = Context::new(node, &neighbors);
            if O::ENABLED {
                ctx.enable_markers();
            }
            self.nodes[id].on_start(&mut ctx);
            self.drain_context(node, &mut ctx)?;
        }
        Ok(())
    }

    /// Processes a single scheduled delivery: the scheduler picks a non-empty
    /// link, the link's oldest message (per-link FIFO) is taken, the noise
    /// model either rewrites it (alteration) or deletes it (deletion-side
    /// adversaries only), and — if it survives — the receiving reactor runs
    /// and its sends are queued. Returns `false` if nothing was in flight.
    ///
    /// # Errors
    ///
    /// Returns an error if the receiving reactor emits an invalid message.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler returns a link that is not in the active set
    /// (a contract violation by a custom [`Scheduler`] implementation).
    pub fn step(&mut self) -> Result<bool, SimError> {
        if !self.started {
            self.start()?;
        }
        if self.links.is_empty() {
            return Ok(false);
        }
        let link = self.scheduler.next_link(&self.links.view());
        let env = self
            .links
            .pop(link)
            .expect("scheduler chose an empty or unknown link");
        self.steps += 1;
        let Some(delivered_payload) = self.noise.deliver(&env) else {
            // Deleted in transit: the receiver never observes anything, so no
            // reactor runs. The step still counts towards the step limit —
            // that is what lets run_to_quiescence absorb delete-everything
            // adversaries without hanging.
            self.stats.record_drop();
            self.observer
                .on_drop(env.from, env.to, self.stats.delivered_total);
            if let Some(t) = &mut self.transcript {
                t.push(TranscriptEvent::Dropped {
                    from: env.from,
                    to: env.to,
                    payload: env.payload.to_vec(),
                });
            }
            return Ok(true);
        };
        debug_assert!(
            !delivered_payload.is_empty(),
            "noise must not deliver empty payloads"
        );
        self.stats.record_delivery();
        self.observer.on_deliver(
            env.from,
            env.to,
            (delivered_payload.len() * 8) as u64,
            self.stats.delivered_total,
            self.links.total(),
        );
        if let Some(t) = &mut self.transcript {
            t.push(TranscriptEvent::Delivered {
                from: env.from,
                to: env.to,
                payload: delivered_payload.clone(),
            });
        }
        let to = env.to;
        let neighbors = self.graph.neighbors(to).to_vec();
        let mut ctx = Context::new(to, &neighbors);
        if O::ENABLED {
            ctx.enable_markers();
        }
        self.nodes[to.index()].on_message(env.from, &delivered_payload, &mut ctx);
        self.drain_context(to, &mut ctx)?;
        Ok(true)
    }

    /// Runs until no message is in flight or the step limit is reached.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StepLimitExceeded`] if the limit is hit, or any
    /// error surfaced by [`step`](Self::step).
    pub fn run_to_quiescence(&mut self) -> Result<RunReport, SimError> {
        if !self.started {
            self.start()?;
        }
        let start_steps = self.steps;
        while !self.links.is_empty() {
            if self.steps - start_steps >= self.max_steps {
                return Err(SimError::StepLimitExceeded {
                    limit: self.max_steps,
                });
            }
            self.step()?;
        }
        // Delivery-accounting invariant at quiescence: with no message left
        // in flight, every send was either delivered or dropped — strict
        // equality, not `<=` (a leak here means the link core lost an
        // envelope).
        debug_assert_eq!(
            self.stats.delivered_total + self.stats.dropped_total,
            self.stats.sent_total,
            "quiescent run leaked in-flight messages"
        );
        Ok(RunReport {
            steps: self.steps - start_steps,
            quiescent: true,
        })
    }

    /// Convenience: [`start`](Self::start) followed by
    /// [`run_to_quiescence`](Self::run_to_quiescence).
    ///
    /// # Errors
    ///
    /// Propagates any error from starting or stepping.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        self.start()?;
        self.run_to_quiescence()
    }

    /// Lets external drivers (e.g. benchmark harnesses measuring
    /// `CCoverhead` of a single message) inject an event into a specific
    /// reactor outside of a delivery: the closure receives the reactor and a
    /// context, and any messages it queues enter the network.
    ///
    /// # Errors
    ///
    /// Returns an error if the reactor emits an invalid message.
    pub fn with_node_mut<F>(&mut self, node: NodeId, f: F) -> Result<(), SimError>
    where
        F: FnOnce(&mut R, &mut Context),
    {
        let neighbors = self.graph.neighbors(node).to_vec();
        let mut ctx = Context::new(node, &neighbors);
        if O::ENABLED {
            ctx.enable_markers();
        }
        f(&mut self.nodes[node.index()], &mut ctx);
        self.drain_context(node, &mut ctx)
    }

    /// Moves a reactor's outbox into the network and forwards its phase
    /// markers to the observer, interleaved at the outbox positions where
    /// they were recorded — so every send lands on the correct side of a
    /// phase boundary. For the null observer both the marker vector and the
    /// `O::ENABLED` blocks compile away.
    fn drain_context(&mut self, from: NodeId, ctx: &mut Context) -> Result<(), SimError> {
        let outbox = ctx.take_outbox();
        let markers = if O::ENABLED {
            ctx.take_markers()
        } else {
            Vec::new()
        };
        let mut markers = markers.into_iter().peekable();
        for (pos, (to, payload)) in outbox.into_iter().enumerate() {
            if O::ENABLED {
                while markers.peek().is_some_and(|&(at, _)| at <= pos) {
                    let (_, event) = markers.next().expect("peeked marker");
                    self.observer.on_marker(
                        PhaseMarker { node: from, event },
                        self.stats.delivered_total,
                    );
                }
            }
            self.enqueue_send(from, to, payload)?;
        }
        if O::ENABLED {
            for (_, event) in markers {
                self.observer.on_marker(
                    PhaseMarker { node: from, event },
                    self.stats.delivered_total,
                );
            }
        }
        Ok(())
    }

    fn enqueue_send(&mut self, from: NodeId, to: NodeId, payload: Payload) -> Result<(), SimError> {
        if !self.graph.has_edge(from, to) {
            return Err(SimError::NotNeighbor { from, to });
        }
        if payload.is_empty() {
            return Err(SimError::EmptyPayload { from, to });
        }
        let env = Envelope {
            from,
            to,
            payload,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.stats.record_send(&env);
        if let Some(t) = &mut self.transcript {
            t.push(TranscriptEvent::Sent {
                from: env.from,
                to: env.to,
                payload: env.payload.to_vec(),
            });
        }
        let (env_from, env_to) = (env.from, env.to);
        let bits = (env.payload.len() * 8) as u64;
        let (link, depth) = self.links.push(env);
        self.stats
            .record_queue_depth(env_from, env_to, depth as u64, self.links.total() as u64);
        if depth == 1 {
            self.observer.on_link_activation(link, env_from, env_to);
        }
        self.observer
            .on_send(env_from, env_to, bits, depth, self.links.total());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{ConstantOne, FullCorruption};
    use crate::scheduler::{FifoScheduler, LifoScheduler};
    use fdn_graph::generators;

    /// Floods a single token around a ring exactly once.
    struct RingOnce {
        n: u32,
        seen: bool,
        payload_seen: Option<Vec<u8>>,
    }

    impl RingOnce {
        fn new(n: u32) -> Self {
            RingOnce {
                n,
                seen: false,
                payload_seen: None,
            }
        }
    }

    impl Reactor for RingOnce {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.node() == NodeId(0) {
                ctx.send(NodeId(1), vec![7, 7]);
            }
        }
        fn on_message(&mut self, _from: NodeId, payload: &[u8], ctx: &mut Context) {
            if !self.seen {
                self.seen = true;
                self.payload_seen = Some(payload.to_vec());
                let next = NodeId((ctx.node().0 + 1) % self.n);
                if next != NodeId(0) {
                    ctx.send(next, vec![7, 7]);
                }
            }
        }
        fn output(&self) -> Option<Vec<u8>> {
            self.payload_seen.clone()
        }
    }

    fn ring_sim(n: usize) -> Simulation<RingOnce> {
        let g = generators::cycle(n).unwrap();
        let nodes = (0..n).map(|_| RingOnce::new(n as u32)).collect();
        Simulation::new(g, nodes).unwrap()
    }

    #[test]
    fn rejects_mismatched_node_count() {
        let g = generators::cycle(4).unwrap();
        let nodes = vec![RingOnce::new(4)];
        assert!(matches!(
            Simulation::new(g, nodes),
            Err(SimError::NodeCountMismatch { .. })
        ));
    }

    #[test]
    fn runs_ring_to_quiescence() {
        let mut sim = ring_sim(5);
        let report = sim.run().unwrap();
        assert!(report.quiescent);
        assert_eq!(report.steps, 4); // 4 deliveries: node0 -> 1 -> 2 -> 3 -> 4
        assert!(sim.is_quiescent());
        assert_eq!(sim.stats().sent_total, 4);
        assert_eq!(sim.stats().delivered_total, 4);
        assert_eq!(sim.stats().bits_sent, 4 * 16);
        // Node 0 never hears back; others saw the payload unchanged.
        assert_eq!(sim.node(NodeId(0)).output(), None);
        assert_eq!(sim.node(NodeId(3)).output(), Some(vec![7, 7]));
        assert_eq!(sim.outputs().iter().filter(|o| o.is_some()).count(), 4);
    }

    #[test]
    fn start_is_idempotent_and_step_reports_quiescence() {
        let mut sim = ring_sim(3);
        sim.start().unwrap();
        sim.start().unwrap();
        assert_eq!(sim.inflight_count(), 1);
        assert!(sim.step().unwrap());
        assert!(sim.step().unwrap());
        assert!(!sim.step().unwrap());
        assert!(sim.is_quiescent());
    }

    #[test]
    fn noise_corrupts_delivered_payloads_only() {
        let mut sim = ring_sim(4).with_noise(ConstantOne);
        sim.run().unwrap();
        // Receivers saw the corrupted [1]; the stats still count sent bits.
        assert_eq!(sim.node(NodeId(2)).output(), Some(vec![1]));
        assert_eq!(sim.stats().bits_sent, 3 * 16);
    }

    #[test]
    fn full_corruption_keeps_structure() {
        let mut sim = ring_sim(6).with_noise(FullCorruption::new(3));
        let report = sim.run().unwrap();
        assert_eq!(report.steps, 5);
        for id in 1..6 {
            assert!(sim.node(NodeId(id)).output().is_some());
        }
    }

    #[test]
    fn omission_drops_messages_and_still_quiesces() {
        use crate::noise::Omission;
        // Dropping everything: the run drains without any delivery, and the
        // drop path (not the step limit) absorbs the adversary.
        let mut sim = ring_sim(5)
            .with_noise(Omission::new(1000, 3))
            .with_transcript();
        let report = sim.run().unwrap();
        assert!(report.quiescent);
        assert_eq!(report.steps, 1); // node 0's send is dropped; nothing follows
        assert_eq!(sim.stats().delivered_total, 0);
        assert_eq!(sim.stats().dropped_total, 1);
        assert!(sim.outputs().iter().all(Option::is_none));
        let t = sim.transcript().unwrap();
        assert!(t
            .events()
            .iter()
            .any(|e| matches!(e, TranscriptEvent::Dropped { .. })));
    }

    #[test]
    fn crash_link_halts_the_ring_at_the_crash() {
        use crate::noise::CrashLink;
        // The ring token crosses edges one at a time; crashing at pulse 2
        // kills the third hop and the remaining nodes never hear anything.
        let mut sim = ring_sim(6).with_noise(CrashLink::new(2));
        let report = sim.run().unwrap();
        assert!(report.quiescent);
        assert_eq!(sim.stats().delivered_total, 2);
        assert_eq!(sim.stats().dropped_total, 1);
        assert_eq!(sim.outputs().iter().filter(|o| o.is_some()).count(), 2);
    }

    #[test]
    fn burst_noise_is_deterministic_and_never_panics() {
        use crate::noise::Burst;
        let run = |period, len| {
            let mut sim = ring_sim(8).with_noise(Burst::new(period, len));
            let report = sim.run().unwrap();
            (report.steps, sim.stats().dropped_total)
        };
        assert_eq!(run(4, 1), run(4, 1));
        // burst(1,0) never drops: plain ring behaviour.
        assert_eq!(run(1, 0), (7, 0));
        // burst(1,1) drops everything: one step, one drop.
        assert_eq!(run(1, 1), (1, 1));
    }

    #[test]
    fn quiescent_accounting_is_exact_under_every_noise_model() {
        // At quiescence every sent message was delivered or dropped — strict
        // equality, not `<=`: a `<` here would mean the link core leaked an
        // in-flight envelope. Checked across the noise spectrum (none, pure
        // alteration, partial deletion, total deletion).
        use crate::noise::Omission;
        let runs: Vec<Simulation<RingOnce>> = vec![
            ring_sim(6),
            ring_sim(6).with_noise(FullCorruption::new(3)),
            ring_sim(6).with_noise(Omission::new(400, 5)),
            ring_sim(6).with_noise(Omission::new(1000, 5)),
        ];
        for mut sim in runs {
            let report = sim.run().unwrap();
            assert!(report.quiescent);
            let s = sim.stats();
            assert_eq!(
                s.delivered_total + s.dropped_total,
                s.sent_total,
                "quiescent run leaked messages"
            );
        }
        // A run stopped mid-flight (step limit 1) still has messages in the
        // network: the sum is strictly below the send total.
        let mut sim = ring_sim(6).with_max_steps(1);
        assert!(sim.run().is_err());
        let s = sim.stats();
        assert!(s.delivered_total + s.dropped_total < s.sent_total);
        assert!(!sim.is_quiescent());
    }

    #[test]
    fn from_parts_warm_starts_without_reregistering_links() {
        // A finished simulation's topology (graph + registered link table)
        // rehoused around fresh reactors must behave exactly like a
        // from-scratch simulation: same run, same stats, stale queue
        // contents cleared.
        let mut first = ring_sim(5);
        first.run().unwrap();
        let (graph, links, _) = first.into_parts();
        let nodes = (0..5).map(|_| RingOnce::new(5)).collect();
        let mut warm = Simulation::from_parts(graph, links, nodes).unwrap();
        let report = warm.run().unwrap();
        assert!(report.quiescent);
        assert_eq!(report.steps, 4);
        assert_eq!(warm.stats().sent_total, 4);
        assert_eq!(warm.node(NodeId(3)).output(), Some(vec![7, 7]));

        // Leftover in-flight messages are cleared, not replayed.
        let mut aborted = ring_sim(5).with_max_steps(1);
        assert!(aborted.run().is_err());
        let (graph, links, _) = aborted.into_parts();
        assert!(links.total() > 0, "the aborted run left messages in flight");
        let nodes = (0..5).map(|_| RingOnce::new(5)).collect();
        let warm = Simulation::from_parts(graph, links, nodes).unwrap();
        assert_eq!(warm.inflight_count(), 0);

        // Mismatched parts are rejected, not silently misrouted.
        let (graph, links, _) = ring_sim(5).into_parts();
        let short: Vec<RingOnce> = (0..4).map(|_| RingOnce::new(4)).collect();
        assert!(matches!(
            Simulation::from_parts(graph, links, short),
            Err(SimError::NodeCountMismatch { .. })
        ));
        let (_, links, _) = ring_sim(5).into_parts();
        let (other_graph, _, other_nodes) = ring_sim(6).into_parts();
        assert!(matches!(
            Simulation::from_parts(other_graph, links, other_nodes),
            Err(SimError::LinkCountMismatch { .. })
        ));
        // Equal sizes but different adjacencies: a path-with-extra-edge graph
        // and a ring both have n nodes and n-ish edges; the registry check
        // must reject the swap instead of letting the first send panic.
        let ring5 = generators::cycle(5).unwrap();
        let other = {
            // 5 nodes, 5 edges, but not the ring's adjacency: a 4-cycle plus
            // a pendant node on 0 has no link for the ring's 3-4 edge.
            let mut g = Graph::new(5);
            for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4)] {
                g.add_edge(NodeId(u), NodeId(v)).unwrap();
            }
            g
        };
        assert_eq!(ring5.node_count(), other.node_count());
        assert_eq!(ring5.edge_count(), other.edge_count());
        let links = LinkTable::new(&other);
        let nodes = (0..5).map(|_| RingOnce::new(5)).collect();
        assert!(matches!(
            Simulation::from_parts(ring5, links, nodes),
            Err(SimError::LinkTopologyMismatch { .. })
        ));
    }

    #[test]
    fn schedulers_change_interleaving_but_not_totals() {
        for seed in 0..5u64 {
            let mut a = ring_sim(6).with_scheduler(RandomScheduler::new(seed));
            let mut b = ring_sim(6).with_scheduler(FifoScheduler);
            let mut c = ring_sim(6).with_scheduler(LifoScheduler);
            assert_eq!(a.run().unwrap().steps, 5);
            assert_eq!(b.run().unwrap().steps, 5);
            assert_eq!(c.run().unwrap().steps, 5);
        }
    }

    #[test]
    fn transcript_records_sends_and_deliveries() {
        let mut sim = ring_sim(3).with_transcript();
        sim.run().unwrap();
        let t = sim.transcript().unwrap();
        assert_eq!(t.len(), 2 * 2); // 2 sends + 2 deliveries
        assert_eq!(t.local(NodeId(1)).len(), 2); // delivered once, sent once
    }

    #[test]
    fn step_limit_is_enforced() {
        /// Two nodes bouncing a message forever.
        struct PingPong;
        impl Reactor for PingPong {
            fn on_start(&mut self, ctx: &mut Context) {
                if ctx.node() == NodeId(0) {
                    ctx.send(NodeId(1), vec![1]);
                }
            }
            fn on_message(&mut self, from: NodeId, _p: &[u8], ctx: &mut Context) {
                ctx.send(from, vec![1]);
            }
        }
        let g = generators::two_party();
        let mut sim = Simulation::new(g, vec![PingPong, PingPong])
            .unwrap()
            .with_max_steps(100);
        assert_eq!(sim.run(), Err(SimError::StepLimitExceeded { limit: 100 }));
    }

    #[test]
    fn rejects_send_to_non_neighbor_and_empty_payload() {
        struct BadSender {
            empty: bool,
        }
        impl Reactor for BadSender {
            fn on_start(&mut self, ctx: &mut Context) {
                if ctx.node() == NodeId(0) {
                    if self.empty {
                        ctx.send(NodeId(1), vec![]);
                    } else {
                        ctx.send(NodeId(2), vec![1]);
                    }
                }
            }
            fn on_message(&mut self, _f: NodeId, _p: &[u8], _c: &mut Context) {}
        }
        let g = generators::path(4).unwrap();
        let nodes = (0..4).map(|_| BadSender { empty: false }).collect();
        let mut sim = Simulation::new(g.clone(), nodes).unwrap();
        assert!(matches!(sim.run(), Err(SimError::NotNeighbor { .. })));
        let nodes = (0..4).map(|_| BadSender { empty: true }).collect();
        let mut sim = Simulation::new(g, nodes).unwrap();
        assert!(matches!(sim.run(), Err(SimError::EmptyPayload { .. })));
    }

    #[test]
    fn with_node_mut_injects_events() {
        let mut sim = ring_sim(4);
        sim.start().unwrap();
        sim.run_to_quiescence().unwrap();
        assert!(sim.is_quiescent());
        // Inject a fresh send from node 2 and watch it propagate one hop.
        sim.with_node_mut(NodeId(2), |_node, ctx| {
            ctx.send(NodeId(3), vec![9]);
        })
        .unwrap();
        assert_eq!(sim.inflight_count(), 1);
        let report = sim.run_to_quiescence().unwrap();
        assert!(report.steps >= 1);
    }

    #[test]
    fn observer_sees_every_event_with_consistent_counters() {
        use crate::observer::{Observer, PhaseMarker};

        #[derive(Default)]
        struct Recorder {
            attached: Option<(usize, usize)>,
            sends: u64,
            delivers: u64,
            drops: u64,
            activations: u64,
            last_inflight: usize,
        }
        impl Observer for Recorder {
            fn on_attach(&mut self, nodes: usize, links: usize) {
                self.attached = Some((nodes, links));
            }
            fn on_send(
                &mut self,
                _f: NodeId,
                _t: NodeId,
                bits: u64,
                depth: usize,
                inflight: usize,
            ) {
                assert_eq!(bits, 16);
                assert!(depth >= 1);
                self.sends += 1;
                self.last_inflight = inflight;
            }
            fn on_link_activation(&mut self, _l: crate::LinkId, _f: NodeId, _t: NodeId) {
                self.activations += 1;
            }
            fn on_deliver(
                &mut self,
                _f: NodeId,
                _t: NodeId,
                bits: u64,
                deliveries: u64,
                inflight: usize,
            ) {
                assert_eq!(bits, 16);
                self.delivers += 1;
                assert_eq!(deliveries, self.delivers);
                self.last_inflight = inflight;
            }
            fn on_drop(&mut self, _f: NodeId, _t: NodeId, _deliveries: u64) {
                self.drops += 1;
            }
            fn on_marker(&mut self, _m: PhaseMarker, _deliveries: u64) {}
        }

        let mut sim = ring_sim(5).with_observer(Recorder::default());
        sim.run().unwrap();
        let rec = sim.observer();
        assert_eq!(rec.attached, Some((5, 10)));
        assert_eq!(rec.sends, sim.stats().sent_total);
        assert_eq!(rec.delivers, sim.stats().delivered_total);
        assert_eq!(rec.drops, 0);
        // A single token: every send re-activates an empty link.
        assert_eq!(rec.activations, rec.sends);
        assert_eq!(rec.last_inflight, 0);

        // Drops are observed too.
        use crate::noise::Omission;
        let mut sim = ring_sim(5)
            .with_noise(Omission::new(1000, 3))
            .with_observer(Recorder::default());
        sim.run().unwrap();
        assert_eq!(sim.observer().drops, 1);
        let rec = sim.into_observer();
        assert_eq!(rec.sends, 1);
    }

    #[test]
    fn markers_interleave_with_sends_at_recorded_positions() {
        use crate::observer::{Observer, PhaseEvent, PhaseMarker};

        /// Emits marker / send / marker / send from node 0 at start.
        struct Marking;
        impl Reactor for Marking {
            fn on_start(&mut self, ctx: &mut Context) {
                assert!(ctx.markers_enabled());
                if ctx.node() == NodeId(0) {
                    ctx.marker(PhaseEvent::ConstructionStart);
                    ctx.send(NodeId(1), vec![1, 1]);
                    ctx.marker(PhaseEvent::ConstructionQuiescence);
                    ctx.send(NodeId(1), vec![2, 2]);
                }
            }
            fn on_message(&mut self, _f: NodeId, _p: &[u8], _c: &mut Context) {}
        }

        #[derive(Default)]
        struct Log(Vec<String>);
        impl Observer for Log {
            fn on_send(&mut self, _f: NodeId, _t: NodeId, _b: u64, _d: usize, _i: usize) {
                self.0.push("send".into());
            }
            fn on_marker(&mut self, m: PhaseMarker, _deliveries: u64) {
                assert_eq!(m.node, NodeId(0));
                self.0.push(m.event.label().into());
            }
        }

        let g = generators::two_party();
        let mut sim = Simulation::new(g, vec![Marking, Marking])
            .unwrap()
            .with_observer(Log::default());
        sim.run().unwrap();
        assert_eq!(
            sim.observer().0,
            vec![
                "construction-start",
                "send",
                "construction-quiescence",
                "send"
            ]
        );
    }

    #[test]
    fn null_observer_keeps_marker_collection_off() {
        /// Asserts the engine did not enable marker collection.
        struct NoMarkers;
        impl Reactor for NoMarkers {
            fn on_start(&mut self, ctx: &mut Context) {
                assert!(!ctx.markers_enabled());
                // Harmless even when disabled: recorded nowhere.
                ctx.marker(crate::observer::PhaseEvent::OnlineWindow);
            }
            fn on_message(&mut self, _f: NodeId, _p: &[u8], _c: &mut Context) {}
        }
        let g = generators::two_party();
        let mut sim = Simulation::new(g, vec![NoMarkers, NoMarkers]).unwrap();
        sim.run().unwrap();
        assert!(sim.is_quiescent());
    }

    #[test]
    fn counting_store_preserves_runs_and_accounting() {
        use crate::links::LinkStore;
        use crate::noise::Omission;
        // The same ring run in both representations: identical reports,
        // stats and outputs, and exact accounting at quiescence across the
        // noise spectrum (none, alteration, partial and total deletion).
        for store in LinkStore::ALL {
            let noises: Vec<Simulation<RingOnce>> = vec![
                ring_sim(6).with_link_store(store),
                ring_sim(6)
                    .with_link_store(store)
                    .with_noise(FullCorruption::new(3)),
                ring_sim(6)
                    .with_link_store(store)
                    .with_noise(Omission::new(400, 5)),
                ring_sim(6)
                    .with_link_store(store)
                    .with_noise(Omission::new(1000, 5)),
            ];
            for mut sim in noises {
                assert_eq!(sim.link_store(), store);
                let report = sim.run().unwrap();
                assert!(report.quiescent);
                let s = sim.stats();
                assert_eq!(
                    s.delivered_total + s.dropped_total,
                    s.sent_total,
                    "quiescent {store} run leaked messages"
                );
            }
        }
        let run = |store| {
            let mut sim = ring_sim(6).with_link_store(store).with_transcript();
            let report = sim.run().unwrap();
            (report, sim.transcript().unwrap().clone(), sim.outputs())
        };
        assert_eq!(run(LinkStore::Exact), run(LinkStore::Counting));
    }

    #[test]
    fn from_parts_warm_starts_a_counting_table() {
        use crate::links::LinkStore;
        // A counting-store topology survives the into_parts/from_parts
        // round-trip with its representation intact — the replay-mode warm
        // start — and replays the run exactly.
        let mut first = ring_sim(5).with_link_store(LinkStore::Counting);
        first.run().unwrap();
        let (graph, links, _) = first.into_parts();
        assert_eq!(links.store(), LinkStore::Counting);
        let nodes = (0..5).map(|_| RingOnce::new(5)).collect();
        let mut warm = Simulation::from_parts(graph, links, nodes).unwrap();
        assert_eq!(warm.link_store(), LinkStore::Counting);
        let report = warm.run().unwrap();
        assert!(report.quiescent);
        assert_eq!(report.steps, 4);
        assert_eq!(warm.node(NodeId(3)).output(), Some(vec![7, 7]));

        // An exact-store cache converted for a counting run (the runner's
        // path when `--link-store counting` replays a shared checkpoint).
        let (graph, mut links, _) = ring_sim(5).into_parts();
        links.convert_store(LinkStore::Counting);
        let nodes = (0..5).map(|_| RingOnce::new(5)).collect();
        let mut warm = Simulation::from_parts(graph, links, nodes).unwrap();
        assert_eq!(warm.link_store(), LinkStore::Counting);
        assert_eq!(warm.run().unwrap().steps, 4);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut sim = ring_sim(8)
                .with_scheduler(RandomScheduler::new(seed))
                .with_noise(FullCorruption::new(seed))
                .with_transcript();
            sim.run().unwrap();
            sim.transcript().unwrap().clone()
        };
        assert_eq!(run(5), run(5));
    }
}
