//! The node runtime interface.

use fdn_graph::NodeId;

use crate::envelope::Payload;
use crate::observer::PhaseEvent;

/// The per-event execution context handed to a [`Reactor`]: identifies the
/// node, exposes its neighbourhood, collects outgoing messages and — when an
/// observer is attached — semantic phase markers.
#[derive(Debug)]
pub struct Context<'a> {
    node: NodeId,
    neighbors: &'a [NodeId],
    outbox: Vec<(NodeId, Payload)>,
    markers: Vec<(usize, PhaseEvent)>,
    markers_enabled: bool,
}

impl<'a> Context<'a> {
    /// Creates a context for `node` with the given (sorted) neighbour list.
    pub fn new(node: NodeId, neighbors: &'a [NodeId]) -> Self {
        Context {
            node,
            neighbors,
            outbox: Vec::new(),
            markers: Vec::new(),
            markers_enabled: false,
        }
    }

    /// The node this context belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's neighbours in the communication graph.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Queues a message to neighbour `to`. Validity (non-empty payload,
    /// `to` actually being a neighbour) is checked by the simulation engine
    /// when the event handler returns. A broadcast can serialize once and
    /// pass a shared [`Payload`] clone per neighbour; `Vec<u8>` still
    /// converts implicitly for one-off messages.
    pub fn send(&mut self, to: NodeId, payload: impl Into<Payload>) {
        self.outbox.push((to, payload.into()));
    }

    /// Number of messages queued so far in this event.
    pub fn pending_sends(&self) -> usize {
        self.outbox.len()
    }

    /// Drains the queued messages (used by the engine).
    pub fn take_outbox(&mut self) -> Vec<(NodeId, Payload)> {
        std::mem::take(&mut self.outbox)
    }

    /// Switches phase-marker collection on. Called by the engine when the
    /// attached observer has [`Observer::ENABLED`](crate::Observer::ENABLED)
    /// set; reactors never call this.
    pub fn enable_markers(&mut self) {
        self.markers_enabled = true;
    }

    /// Whether phase markers are being collected. Reactors may consult this
    /// to skip work that only feeds markers (e.g. snapshotting state to
    /// detect a transition).
    pub fn markers_enabled(&self) -> bool {
        self.markers_enabled
    }

    /// Records a semantic phase marker at the current position in the
    /// outbox: the engine forwards it to the observer *before* any message
    /// queued after this call, so phase attribution of sends is exact. A
    /// no-op (no allocation) unless an observer enabled marker collection.
    pub fn marker(&mut self, event: PhaseEvent) {
        if self.markers_enabled {
            self.markers.push((self.outbox.len(), event));
        }
    }

    /// Drains the recorded markers as `(outbox position, event)` pairs
    /// (used by the engine).
    pub fn take_markers(&mut self) -> Vec<(usize, PhaseEvent)> {
        std::mem::take(&mut self.markers)
    }
}

/// An event-driven node: the unit of execution of the simulator.
///
/// A reactor is invoked once at start-up and then once per delivered message.
/// All its communication goes through the [`Context`]. The paper's simulators
/// (`fdn-core`) and the noiseless baseline runner are implemented as
/// reactors.
pub trait Reactor {
    /// Called once, before any message is delivered.
    fn on_start(&mut self, ctx: &mut Context);

    /// Called when a message from `from` is delivered with (possibly
    /// corrupted) `payload`.
    fn on_message(&mut self, from: NodeId, payload: &[u8], ctx: &mut Context);

    /// The node's irrevocable output, if it has produced one.
    fn output(&self) -> Option<Vec<u8>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_sends() {
        let neighbors = [NodeId(1), NodeId(2)];
        let mut ctx = Context::new(NodeId(0), &neighbors);
        assert_eq!(ctx.node(), NodeId(0));
        assert_eq!(ctx.neighbors(), &neighbors);
        assert_eq!(ctx.pending_sends(), 0);
        ctx.send(NodeId(1), vec![1, 2]);
        ctx.send(NodeId(2), vec![3]);
        assert_eq!(ctx.pending_sends(), 2);
        let out = ctx.take_outbox();
        assert_eq!(
            out,
            vec![(NodeId(1), vec![1, 2].into()), (NodeId(2), vec![3].into())]
        );
        assert_eq!(ctx.pending_sends(), 0);
    }

    #[test]
    fn markers_are_noops_until_enabled() {
        let neighbors = [NodeId(1)];
        let mut ctx = Context::new(NodeId(0), &neighbors);
        assert!(!ctx.markers_enabled());
        ctx.marker(PhaseEvent::ConstructionStart);
        assert!(ctx.take_markers().is_empty());

        ctx.enable_markers();
        assert!(ctx.markers_enabled());
        ctx.marker(PhaseEvent::ConstructionStart);
        ctx.send(NodeId(1), vec![1]);
        ctx.marker(PhaseEvent::ConstructionQuiescence);
        ctx.send(NodeId(1), vec![2]);
        assert_eq!(
            ctx.take_markers(),
            vec![
                (0, PhaseEvent::ConstructionStart),
                (1, PhaseEvent::ConstructionQuiescence)
            ]
        );
    }

    #[test]
    fn default_output_is_none() {
        struct Silent;
        impl Reactor for Silent {
            fn on_start(&mut self, _ctx: &mut Context) {}
            fn on_message(&mut self, _from: NodeId, _payload: &[u8], _ctx: &mut Context) {}
        }
        assert_eq!(Silent.output(), None);
    }
}
