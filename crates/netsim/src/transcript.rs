//! Execution transcripts.
//!
//! The paper defines the transcript `τ` of an execution as the ordered
//! sequence of send and receive events, each tagged with the nodes and the
//! link involved. The simulator can optionally record this sequence; the
//! equivalence experiments use it to check the Theorem 6/12 guarantee that
//! the simulated execution corresponds to a valid noiseless execution of the
//! inner protocol.

use fdn_graph::NodeId;

/// One entry of a transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranscriptEvent {
    /// `from` handed a message for `to` to the channel.
    Sent {
        from: NodeId,
        to: NodeId,
        payload: Vec<u8>,
    },
    /// `to` received a message from `from` (after noise).
    Delivered {
        from: NodeId,
        to: NodeId,
        payload: Vec<u8>,
    },
    /// The noise model deleted the message `from` sent towards `to` (only
    /// possible under deletion-side adversaries, never in the paper's model).
    /// The payload is the one that was sent; neither endpoint observes the
    /// event.
    Dropped {
        from: NodeId,
        to: NodeId,
        payload: Vec<u8>,
    },
}

impl TranscriptEvent {
    /// The node performing (or, for `Dropped`, suffering) the action: sender
    /// for `Sent`, receiver for `Delivered` and `Dropped`.
    pub fn actor(&self) -> NodeId {
        match self {
            TranscriptEvent::Sent { from, .. } => *from,
            TranscriptEvent::Delivered { to, .. } | TranscriptEvent::Dropped { to, .. } => *to,
        }
    }
}

/// The ordered sequence of send/deliver events of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transcript {
    events: Vec<TranscriptEvent>,
}

impl Transcript {
    /// Creates an empty transcript.
    pub fn new() -> Self {
        Transcript::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TranscriptEvent) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[TranscriptEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The local transcript of a node: the subsequence of events in which the
    /// node is the sender or the receiver (the paper's `τ_v`).
    pub fn local(&self, node: NodeId) -> Vec<&TranscriptEvent> {
        self.events.iter().filter(|e| e.actor() == node).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Transcript::new();
        assert!(t.is_empty());
        t.push(TranscriptEvent::Sent {
            from: NodeId(0),
            to: NodeId(1),
            payload: vec![1],
        });
        t.push(TranscriptEvent::Delivered {
            from: NodeId(0),
            to: NodeId(1),
            payload: vec![1],
        });
        t.push(TranscriptEvent::Sent {
            from: NodeId(1),
            to: NodeId(0),
            payload: vec![2],
        });
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.events().len(), 3);
        let local0 = t.local(NodeId(0));
        assert_eq!(local0.len(), 1);
        let local1 = t.local(NodeId(1));
        assert_eq!(local1.len(), 2);
        assert_eq!(local1[0].actor(), NodeId(1));
        // A dropped message is attributed to its would-be receiver.
        t.push(TranscriptEvent::Dropped {
            from: NodeId(1),
            to: NodeId(0),
            payload: vec![3],
        });
        assert_eq!(t.local(NodeId(0)).len(), 2);
        assert_eq!(t.events()[3].actor(), NodeId(0));
    }
}
