//! The zero-cost observer layer: hot-path hooks, semantic phase markers and
//! the built-in probes (time-series sampler, span profiler).
//!
//! The simulation engine is generic over an [`Observer`]
//! (`Simulation<R, O = NullObserver>`). Every hook has an empty default
//! body and [`NullObserver`] overrides nothing, so the disabled path
//! monomorphizes to the exact un-instrumented engine — no branch, no
//! virtual call, no allocation (the `observer_overhead` bench in
//! `fdn-bench` pins this against the `link_core` baseline).
//!
//! Reactors participate through **phase markers**: semantic events
//! ([`PhaseEvent`]) pushed into their [`Context`](crate::Context) alongside
//! outgoing messages. Marker collection is off unless the simulation's
//! observer asks for it ([`Observer::ENABLED`]), so un-observed runs pay a
//! single predictable bool test per marker site. The engine forwards each
//! marker to the observer **interleaved with the event's sends** in emission
//! order and stamped with the current delivery count — which is what lets a
//! profiler attribute every pulse of a phase-transition event to the correct
//! side of the boundary.
//!
//! Everything the built-in observers record is keyed by delivery count,
//! never wall clock: observed output is byte-deterministic and independent
//! of thread count, exactly like the rest of the pipeline.

// fdn-lint: allow(D2) -- live counter only; exports sort by (from, to) first
use std::collections::HashMap;
use std::fmt;

use fdn_graph::NodeId;

use crate::links::LinkId;

/// A semantic phase transition emitted by a reactor via
/// [`Context::marker`](crate::Context::marker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseEvent {
    /// The node begins the distributed Robbins-cycle construction
    /// (pre-processing, the paper's `CCinit` phase).
    ConstructionStart,
    /// The node's construction reached quiescence; everything after is
    /// online traffic.
    ConstructionQuiescence,
    /// The node was warm-started in the online phase from a construct-once
    /// checkpoint (no construction runs inside this simulation).
    ReplayWarmStart,
    /// The node's engine acquired the cycle token.
    TokenAcquired,
    /// The node's engine released the cycle token.
    TokenReleased,
    /// A batch of inner-protocol messages entered the node's engine: an
    /// online data window opens.
    OnlineWindow,
}

impl PhaseEvent {
    /// Render-stable label (used by trace output; never reformat).
    pub fn label(&self) -> &'static str {
        match self {
            PhaseEvent::ConstructionStart => "construction-start",
            PhaseEvent::ConstructionQuiescence => "construction-quiescence",
            PhaseEvent::ReplayWarmStart => "replay-warm-start",
            PhaseEvent::TokenAcquired => "token-acquired",
            PhaseEvent::TokenReleased => "token-released",
            PhaseEvent::OnlineWindow => "online-window",
        }
    }

    /// Whether this event belongs to the construction (pre-processing)
    /// phase.
    pub fn is_construction(&self) -> bool {
        matches!(
            self,
            PhaseEvent::ConstructionStart | PhaseEvent::ConstructionQuiescence
        )
    }
}

impl fmt::Display for PhaseEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A [`PhaseEvent`] attributed to the node that emitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseMarker {
    /// The emitting node.
    pub node: NodeId,
    /// The semantic event.
    pub event: PhaseEvent,
}

/// Hooks on the simulation hot path. Every method has an empty default
/// body, so implementors override only what they observe and
/// [`NullObserver`] compiles to nothing.
///
/// All counters passed to hooks reflect the state *after* the hooked event
/// was accounted (e.g. `deliveries` in [`on_deliver`](Self::on_deliver)
/// includes the delivery being reported).
pub trait Observer {
    /// Whether reactors should pay for phase-marker collection. `false`
    /// (as on [`NullObserver`]) makes every marker site a no-op.
    const ENABLED: bool = true;

    /// Called once when the simulation starts, with the node and directed
    /// link counts of the topology.
    #[inline]
    fn on_attach(&mut self, _nodes: usize, _links: usize) {}

    /// A message was queued on the `from -> to` link. `link_depth` is the
    /// link's queue depth and `inflight` the network-wide total, both after
    /// the push; `bits` is the payload size in bits.
    #[inline]
    fn on_send(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        _bits: u64,
        _link_depth: usize,
        _inflight: usize,
    ) {
    }

    /// The `from -> to` link went from empty to non-empty (it entered the
    /// scheduler's active set).
    #[inline]
    fn on_link_activation(&mut self, _link: LinkId, _from: NodeId, _to: NodeId) {}

    /// A message was delivered. `deliveries` is the cumulative delivery
    /// count (the observed timeline's clock) and `inflight` the total after
    /// the message left its queue.
    #[inline]
    fn on_deliver(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        _bits: u64,
        _deliveries: u64,
        _inflight: usize,
    ) {
    }

    /// A message was deleted in transit by a deletion-side noise model.
    #[inline]
    fn on_drop(&mut self, _from: NodeId, _to: NodeId, _deliveries: u64) {}

    /// A reactor emitted a semantic phase marker, stamped with the delivery
    /// count at which it surfaced. Markers arrive interleaved with the same
    /// event's [`on_send`](Self::on_send) calls in emission order.
    #[inline]
    fn on_marker(&mut self, _marker: PhaseMarker, _deliveries: u64) {}
}

/// The default observer: observes nothing, costs nothing. With
/// [`Observer::ENABLED`] `= false` it also switches reactor-side marker
/// collection off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    const ENABLED: bool = false;
}

/// Two observers driven side by side (e.g. a sampler plus a profiler).
impl<A: Observer, B: Observer> Observer for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn on_attach(&mut self, nodes: usize, links: usize) {
        self.0.on_attach(nodes, links);
        self.1.on_attach(nodes, links);
    }

    #[inline]
    fn on_send(&mut self, from: NodeId, to: NodeId, bits: u64, link_depth: usize, inflight: usize) {
        self.0.on_send(from, to, bits, link_depth, inflight);
        self.1.on_send(from, to, bits, link_depth, inflight);
    }

    #[inline]
    fn on_link_activation(&mut self, link: LinkId, from: NodeId, to: NodeId) {
        self.0.on_link_activation(link, from, to);
        self.1.on_link_activation(link, from, to);
    }

    #[inline]
    fn on_deliver(
        &mut self,
        from: NodeId,
        to: NodeId,
        bits: u64,
        deliveries: u64,
        inflight: usize,
    ) {
        self.0.on_deliver(from, to, bits, deliveries, inflight);
        self.1.on_deliver(from, to, bits, deliveries, inflight);
    }

    #[inline]
    fn on_drop(&mut self, from: NodeId, to: NodeId, deliveries: u64) {
        self.0.on_drop(from, to, deliveries);
        self.1.on_drop(from, to, deliveries);
    }

    #[inline]
    fn on_marker(&mut self, marker: PhaseMarker, deliveries: u64) {
        self.0.on_marker(marker, deliveries);
        self.1.on_marker(marker, deliveries);
    }
}

/// Default bound on the number of retained time-series samples.
pub const DEFAULT_SAMPLE_CAPACITY: usize = 512;

/// One point of the sampled time series. The `deliveries` stamp is the
/// timeline clock: samples are taken every `stride` deliveries, so the
/// retained set is always a regular grid `stride, 2*stride, ...`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Cumulative deliveries at sampling time (the sample's timestamp).
    pub deliveries: u64,
    /// Messages in flight.
    pub inflight: u64,
    /// Cumulative sends.
    pub sent: u64,
    /// Cumulative deliveries (equals the stamp; kept for symmetry with the
    /// other cumulative counters when rendering rows).
    pub delivered: u64,
    /// Cumulative deletions.
    pub dropped: u64,
    /// High-water mark of any single link's queue depth so far.
    pub max_link_depth: u64,
    /// Coarse phase id: 1 while at least one node is still in its
    /// construction phase, 0 otherwise.
    pub phase: u8,
}

/// The time-series sampler: records a bounded ring of deterministic
/// [`Sample`]s, one every `stride` deliveries. When the ring fills, every
/// other sample is dropped and the stride doubles, so a run of any length
/// ends with at most `capacity` samples on a regular delivery-count grid.
#[derive(Debug, Clone)]
pub struct TimeSeriesSampler {
    stride: u64,
    capacity: usize,
    samples: Vec<Sample>,
    sent: u64,
    dropped: u64,
    inflight: u64,
    max_link_depth: u64,
    constructing: usize,
}

impl TimeSeriesSampler {
    /// Creates a sampler taking one sample every `stride` deliveries
    /// (minimum 1), retaining at most `capacity` samples (minimum 2,
    /// rounded up to even so compaction halves exactly).
    pub fn new(stride: u64, capacity: usize) -> Self {
        let capacity = capacity.max(2);
        TimeSeriesSampler {
            stride: stride.max(1),
            capacity: capacity + capacity % 2,
            samples: Vec::new(),
            sent: 0,
            dropped: 0,
            inflight: 0,
            max_link_depth: 0,
            constructing: 0,
        }
    }

    /// The current sampling stride (doubles on every compaction).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The retained samples, in delivery order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    fn compact(&mut self) {
        // Keep the odd positions: their stamps are exactly the multiples of
        // the doubled stride, so the grid stays regular.
        let mut i = 0usize;
        self.samples.retain(|_| {
            let keep = i % 2 == 1;
            i += 1;
            keep
        });
        self.stride *= 2;
    }
}

impl Observer for TimeSeriesSampler {
    fn on_send(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        _bits: u64,
        link_depth: usize,
        inflight: usize,
    ) {
        self.sent += 1;
        self.inflight = inflight as u64;
        self.max_link_depth = self.max_link_depth.max(link_depth as u64);
    }

    fn on_deliver(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        _bits: u64,
        deliveries: u64,
        inflight: usize,
    ) {
        self.inflight = inflight as u64;
        if deliveries.is_multiple_of(self.stride) {
            self.samples.push(Sample {
                deliveries,
                inflight: self.inflight,
                sent: self.sent,
                delivered: deliveries,
                dropped: self.dropped,
                max_link_depth: self.max_link_depth,
                phase: u8::from(self.constructing > 0),
            });
            if self.samples.len() >= self.capacity {
                self.compact();
            }
        }
    }

    fn on_drop(&mut self, _from: NodeId, _to: NodeId, _deliveries: u64) {
        self.dropped += 1;
        self.inflight = self.inflight.saturating_sub(1);
    }

    fn on_marker(&mut self, marker: PhaseMarker, _deliveries: u64) {
        match marker.event {
            PhaseEvent::ConstructionStart => self.constructing += 1,
            PhaseEvent::ConstructionQuiescence => {
                self.constructing = self.constructing.saturating_sub(1);
            }
            _ => {}
        }
    }
}

/// Default bound on the number of phase markers the profiler retains.
pub const DEFAULT_MARKER_CAPACITY: usize = 8192;

/// Per-(phase, node) communication aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Pulses sent by the node while in this phase.
    pub sends: u64,
    /// Bits sent by the node while in this phase.
    pub send_bits: u64,
    /// Deliveries received by the node while in this phase.
    pub deliveries: u64,
    /// Bits delivered to the node while in this phase.
    pub delivered_bits: u64,
}

impl SpanStats {
    /// Whether the span saw any traffic at all.
    pub fn is_idle(&self) -> bool {
        self.sends == 0 && self.deliveries == 0
    }
}

/// The span profiler: attributes every send and delivery to a per-node
/// phase (construction vs online), driven purely by the reactor's phase
/// markers, and logs the markers themselves with delivery-count stamps.
/// Exportable as Chrome trace-event JSON
/// ([`to_chrome_trace_json`](Self::to_chrome_trace_json)) loadable in
/// Perfetto / `chrome://tracing`, with simulated delivery counts as
/// timestamps.
///
/// Nodes are assumed online until a [`PhaseEvent::ConstructionStart`]
/// marker moves them into the construction phase (cycle-only simulations
/// emit no construction markers, so their whole run is online traffic —
/// matching the `cc_init = 0` accounting of the lab runner).
#[derive(Debug, Clone, Default)]
pub struct SpanProfiler {
    construction: Vec<SpanStats>,
    online: Vec<SpanStats>,
    in_construction: Vec<bool>,
    online_since: Vec<u64>,
    markers: Vec<(u64, PhaseMarker)>,
    markers_dropped: u64,
    marker_capacity: usize,
    // fdn-lint: allow(D2) -- keyed increments only; link_table()/trace exports sort by (from, to)
    link_deliveries: HashMap<(NodeId, NodeId), u64>,
    last_stamp: u64,
}

impl SpanProfiler {
    /// Creates a profiler retaining at most [`DEFAULT_MARKER_CAPACITY`]
    /// markers.
    pub fn new() -> Self {
        SpanProfiler {
            marker_capacity: DEFAULT_MARKER_CAPACITY,
            ..SpanProfiler::default()
        }
    }

    /// Per-node construction-phase aggregate (all zero when the node never
    /// entered a construction phase).
    pub fn construction_span(&self, node: NodeId) -> SpanStats {
        self.construction
            .get(node.index())
            .copied()
            .unwrap_or_default()
    }

    /// Per-node online-phase aggregate.
    pub fn online_span(&self, node: NodeId) -> SpanStats {
        self.online.get(node.index()).copied().unwrap_or_default()
    }

    /// Number of nodes the profiler was attached to.
    pub fn node_count(&self) -> usize {
        self.online.len()
    }

    /// Delivery stamp at which the node left its construction phase (0 for
    /// nodes that never constructed, i.e. were online from the start).
    pub fn online_since(&self, node: NodeId) -> u64 {
        self.online_since.get(node.index()).copied().unwrap_or(0)
    }

    /// Whether the node is still in its construction phase.
    pub fn still_constructing(&self, node: NodeId) -> bool {
        self.in_construction
            .get(node.index())
            .copied()
            .unwrap_or(false)
    }

    /// The retained phase markers as `(delivery_stamp, marker)`, in
    /// emission order.
    pub fn markers(&self) -> &[(u64, PhaseMarker)] {
        &self.markers
    }

    /// Markers discarded after the retention bound filled.
    pub fn markers_dropped(&self) -> u64 {
        self.markers_dropped
    }

    /// The delivery stamp of the last observed event (the timeline's end).
    pub fn last_stamp(&self) -> u64 {
        self.last_stamp
    }

    /// Per-directed-link delivery counts, sorted by `(from, to)` — the
    /// deterministic order every renderer must use (the internal map is
    /// unordered).
    pub fn link_deliveries_sorted(&self) -> Vec<((NodeId, NodeId), u64)> {
        let mut v: Vec<_> = self.link_deliveries.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_unstable_by_key(|&((f, t), _)| (f, t));
        v
    }

    /// The top `k` links by delivery count; ties broken by `(from, to)` so
    /// the ranking is deterministic.
    pub fn hottest_links(&self, k: usize) -> Vec<((NodeId, NodeId), u64)> {
        let mut v = self.link_deliveries_sorted();
        v.sort_by_key(|&((f, t), n)| (std::cmp::Reverse(n), f, t));
        v.truncate(k);
        v
    }

    /// Exports the profile as a Chrome trace-event JSON document (Perfetto
    /// and `chrome://tracing` both load it). Timestamps and durations are
    /// simulated delivery counts, one "microsecond" per delivery; `tid` is
    /// the node id. Complete (`"X"`) events cover each node's construction
    /// and online spans; instant (`"i"`) events mark the retained phase
    /// markers.
    pub fn to_chrome_trace_json(&self) -> String {
        let mut events = Vec::new();
        for id in 0..self.node_count() {
            let node = NodeId(id as u32);
            events.extend(self.chrome_span_events(node, 0));
        }
        for (stamp, marker) in &self.markers {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                marker.event.label(),
                stamp,
                marker.node.0
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
            events.join(",")
        )
    }

    /// The complete (`"X"`) span events of one node under an explicit
    /// Chrome `pid`, as raw JSON object strings — the composition hook for
    /// multi-simulation trace documents.
    pub fn chrome_span_events(&self, node: NodeId, pid: u64) -> Vec<String> {
        let mut events = Vec::new();
        let end = self.last_stamp.max(1);
        let boundary = self.online_since(node);
        let construction = self.construction_span(node);
        let online = self.online_span(node);
        let constructed = !construction.is_idle() || self.still_constructing(node) || boundary > 0;
        if constructed {
            let dur = if self.still_constructing(node) {
                end
            } else {
                boundary
            };
            events.push(format!(
                "{{\"name\":\"construction\",\"ph\":\"X\",\"ts\":0,\"dur\":{},\"pid\":{},\"tid\":{},\
                 \"args\":{{\"sends\":{},\"deliveries\":{}}}}}",
                dur, pid, node.0, construction.sends, construction.deliveries
            ));
        }
        if !self.still_constructing(node) {
            let (ts, dur) = (boundary, end.saturating_sub(boundary));
            events.push(format!(
                "{{\"name\":\"online\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\
                 \"args\":{{\"sends\":{},\"deliveries\":{}}}}}",
                ts, dur, pid, node.0, online.sends, online.deliveries
            ));
        }
        events
    }

    fn span_mut(&mut self, node: NodeId) -> &mut SpanStats {
        self.ensure(node);
        if self.in_construction[node.index()] {
            &mut self.construction[node.index()]
        } else {
            &mut self.online[node.index()]
        }
    }

    fn ensure(&mut self, node: NodeId) {
        // Defensive: on_attach sizes the vectors, but a profiler driven
        // without attach (unit tests) must not index out of bounds.
        if node.index() >= self.online.len() {
            let n = node.index() + 1;
            self.construction.resize(n, SpanStats::default());
            self.online.resize(n, SpanStats::default());
            self.in_construction.resize(n, false);
            self.online_since.resize(n, 0);
        }
    }
}

impl Observer for SpanProfiler {
    fn on_attach(&mut self, nodes: usize, _links: usize) {
        self.construction = vec![SpanStats::default(); nodes];
        self.online = vec![SpanStats::default(); nodes];
        self.in_construction = vec![false; nodes];
        self.online_since = vec![0; nodes];
    }

    fn on_send(
        &mut self,
        from: NodeId,
        _to: NodeId,
        bits: u64,
        _link_depth: usize,
        _inflight: usize,
    ) {
        let span = self.span_mut(from);
        span.sends += 1;
        span.send_bits += bits;
    }

    fn on_deliver(
        &mut self,
        from: NodeId,
        to: NodeId,
        bits: u64,
        deliveries: u64,
        _inflight: usize,
    ) {
        self.last_stamp = deliveries;
        let span = self.span_mut(to);
        span.deliveries += 1;
        span.delivered_bits += bits;
        *self.link_deliveries.entry((from, to)).or_insert(0) += 1;
    }

    fn on_drop(&mut self, _from: NodeId, _to: NodeId, deliveries: u64) {
        self.last_stamp = deliveries;
    }

    fn on_marker(&mut self, marker: PhaseMarker, deliveries: u64) {
        self.ensure(marker.node);
        match marker.event {
            PhaseEvent::ConstructionStart => self.in_construction[marker.node.index()] = true,
            PhaseEvent::ConstructionQuiescence if !self.in_construction[marker.node.index()] => {}
            PhaseEvent::ConstructionQuiescence | PhaseEvent::ReplayWarmStart => {
                self.in_construction[marker.node.index()] = false;
                self.online_since[marker.node.index()] = deliveries;
            }
            _ => {}
        }
        if self.markers.len() < self.marker_capacity.max(1) {
            self.markers.push((deliveries, marker));
        } else {
            self.markers_dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(s: &mut TimeSeriesSampler, n: u64) {
        let (a, b) = (NodeId(0), NodeId(1));
        for i in 1..=n {
            s.on_send(a, b, 8, 1, 1);
            s.on_deliver(a, b, 8, i, 0);
        }
    }

    #[test]
    fn sampler_keeps_a_regular_grid_and_doubles_the_stride() {
        let mut s = TimeSeriesSampler::new(1, 8);
        deliver(&mut s, 100);
        assert!(s.samples().len() <= 8);
        let stride = s.stride();
        assert!(stride > 1, "100 samples at capacity 8 must have compacted");
        for (i, sample) in s.samples().iter().enumerate() {
            assert_eq!(sample.deliveries % stride, 0, "off-grid sample");
            assert!(i == 0 || sample.deliveries > s.samples()[i - 1].deliveries);
        }
        // Deterministic: the same event stream yields the same samples.
        let mut t = TimeSeriesSampler::new(1, 8);
        deliver(&mut t, 100);
        assert_eq!(s.samples(), t.samples());
        assert_eq!(s.stride(), t.stride());
    }

    #[test]
    fn sampler_phase_follows_construction_markers() {
        let mut s = TimeSeriesSampler::new(1, 64);
        s.on_marker(
            PhaseMarker {
                node: NodeId(0),
                event: PhaseEvent::ConstructionStart,
            },
            0,
        );
        deliver(&mut s, 2);
        s.on_marker(
            PhaseMarker {
                node: NodeId(0),
                event: PhaseEvent::ConstructionQuiescence,
            },
            2,
        );
        let (a, b) = (NodeId(0), NodeId(1));
        s.on_send(a, b, 8, 1, 1);
        s.on_deliver(a, b, 8, 3, 0);
        let phases: Vec<u8> = s.samples().iter().map(|x| x.phase).collect();
        assert_eq!(phases, vec![1, 1, 0]);
    }

    #[test]
    fn sampler_counts_drops_without_sampling_them() {
        let mut s = TimeSeriesSampler::new(1, 64);
        s.on_send(NodeId(0), NodeId(1), 8, 1, 1);
        s.on_drop(NodeId(0), NodeId(1), 0);
        assert!(s.samples().is_empty());
        s.on_send(NodeId(0), NodeId(1), 8, 1, 1);
        s.on_deliver(NodeId(0), NodeId(1), 8, 1, 0);
        assert_eq!(s.samples()[0].dropped, 1);
        assert_eq!(s.samples()[0].sent, 2);
    }

    #[test]
    fn profiler_attributes_phases_and_ranks_links_deterministically() {
        let mut p = SpanProfiler::new();
        p.on_attach(3, 6);
        let m = |node, event| PhaseMarker { node, event };
        // Node 0 constructs for 2 deliveries, then goes online.
        p.on_marker(m(NodeId(0), PhaseEvent::ConstructionStart), 0);
        p.on_send(NodeId(0), NodeId(1), 8, 1, 1);
        p.on_deliver(NodeId(0), NodeId(1), 8, 1, 0);
        p.on_deliver(NodeId(0), NodeId(1), 8, 2, 0);
        p.on_marker(m(NodeId(0), PhaseEvent::ConstructionQuiescence), 2);
        p.on_send(NodeId(0), NodeId(2), 16, 1, 1);
        p.on_deliver(NodeId(0), NodeId(2), 16, 3, 0);
        assert_eq!(p.construction_span(NodeId(0)).sends, 1);
        assert_eq!(p.online_span(NodeId(0)).sends, 1);
        assert_eq!(p.online_span(NodeId(0)).send_bits, 16);
        assert_eq!(p.online_span(NodeId(1)).deliveries, 2);
        assert_eq!(p.online_since(NodeId(0)), 2);
        assert!(!p.still_constructing(NodeId(0)));
        // Hottest links: (0,1) twice beats (0,2) once; ties would fall back
        // to the (from, to) order.
        let hot = p.hottest_links(8);
        assert_eq!(hot[0], ((NodeId(0), NodeId(1)), 2));
        assert_eq!(hot[1], ((NodeId(0), NodeId(2)), 1));
        assert_eq!(p.hottest_links(1).len(), 1);
        assert_eq!(p.last_stamp(), 3);
    }

    #[test]
    fn profiler_marker_log_is_bounded() {
        let mut p = SpanProfiler {
            marker_capacity: 4,
            ..SpanProfiler::default()
        };
        for i in 0..10u64 {
            p.on_marker(
                PhaseMarker {
                    node: NodeId(0),
                    event: PhaseEvent::OnlineWindow,
                },
                i,
            );
        }
        assert_eq!(p.markers().len(), 4);
        assert_eq!(p.markers_dropped(), 6);
    }

    #[test]
    fn chrome_trace_export_is_wellformed_and_deterministic() {
        let mut p = SpanProfiler::new();
        p.on_attach(2, 2);
        p.on_marker(
            PhaseMarker {
                node: NodeId(0),
                event: PhaseEvent::ConstructionStart,
            },
            0,
        );
        p.on_send(NodeId(0), NodeId(1), 8, 1, 1);
        p.on_deliver(NodeId(0), NodeId(1), 8, 1, 0);
        p.on_marker(
            PhaseMarker {
                node: NodeId(0),
                event: PhaseEvent::ConstructionQuiescence,
            },
            1,
        );
        let json = p.to_chrome_trace_json();
        assert_eq!(json, p.to_chrome_trace_json());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"construction\""));
        assert!(json.contains("\"name\":\"online\""));
        assert!(json.contains("construction-quiescence"));
        // Balanced braces — a cheap well-formedness check without a parser.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn tuple_observer_drives_both_sides() {
        let mut pair = (TimeSeriesSampler::new(1, 8), SpanProfiler::new());
        pair.on_attach(2, 2);
        pair.on_send(NodeId(0), NodeId(1), 8, 1, 1);
        pair.on_deliver(NodeId(0), NodeId(1), 8, 1, 0);
        assert_eq!(pair.0.samples().len(), 1);
        assert_eq!(pair.1.online_span(NodeId(1)).deliveries, 1);
        const { assert!(<(TimeSeriesSampler, SpanProfiler) as Observer>::ENABLED) };
        const { assert!(!NullObserver::ENABLED) };
    }

    #[test]
    fn phase_event_labels_are_stable() {
        let all = [
            PhaseEvent::ConstructionStart,
            PhaseEvent::ConstructionQuiescence,
            PhaseEvent::ReplayWarmStart,
            PhaseEvent::TokenAcquired,
            PhaseEvent::TokenReleased,
            PhaseEvent::OnlineWindow,
        ];
        let labels: Vec<&str> = all.iter().map(PhaseEvent::label).collect();
        assert_eq!(
            labels,
            vec![
                "construction-start",
                "construction-quiescence",
                "replay-warm-start",
                "token-acquired",
                "token-released",
                "online-window",
            ]
        );
        assert!(PhaseEvent::ConstructionStart.is_construction());
        assert!(!PhaseEvent::TokenAcquired.is_construction());
        assert_eq!(format!("{}", PhaseEvent::OnlineWindow), "online-window");
    }
}
