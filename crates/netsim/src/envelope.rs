//! In-flight messages.

use fdn_graph::NodeId;

/// A message travelling on a link: sender, receiver and the payload as it was
/// sent. Noise is applied only at delivery time, so the envelope always
/// carries the original content (the paper's communication-complexity
/// accounting measures the *sent* length, before corruption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Payload exactly as handed to the channel by the sender.
    pub payload: Vec<u8>,
    /// Global send sequence number (used by FIFO/LIFO schedulers and for
    /// deterministic tie-breaking).
    pub seq: u64,
}

impl Envelope {
    /// Payload length in bits, as counted by the paper's `CC` measures.
    pub fn bits(&self) -> u64 {
        self.payload.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_counts_payload_length() {
        let e = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            payload: vec![0xff, 0x00],
            seq: 7,
        };
        assert_eq!(e.bits(), 16);
    }
}
