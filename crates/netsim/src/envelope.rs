//! In-flight messages and their shared payload representation.

use std::ops::Deref;
use std::sync::Arc;

use fdn_graph::NodeId;

/// An immutable, cheaply-clonable message payload.
///
/// The protocol under study is *content-oblivious*: almost every message is
/// the identical single-byte pulse, broadcast to every neighbour. Storing the
/// bytes behind an [`Arc`] means a broadcast serializes its payload once and
/// every per-link envelope shares it, and the counting link backend can
/// classify "same payload" in `O(1)` by pointer identity before falling back
/// to a byte compare.
///
/// `Payload` is a value type: equality is *byte* equality (pointer identity is
/// only a fast path), so two independently-built pulses still compare equal
/// and reports never depend on allocation history.
#[derive(Debug, Clone, Eq)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// Copies the bytes out into an owned `Vec` (transcripts and the
    /// [`crate::NoiseModel`] API still speak `Vec<u8>`).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Whether two payloads share the same allocation — the `O(1)` fast path
    /// the counting backend uses to extend a run without touching bytes.
    pub fn ptr_eq(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || self.0 == other.0
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload(bytes.into())
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload(bytes.into())
    }
}

/// A message travelling on a link: sender, receiver and the payload as it was
/// sent. Noise is applied only at delivery time, so the envelope always
/// carries the original content (the paper's communication-complexity
/// accounting measures the *sent* length, before corruption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Payload exactly as handed to the channel by the sender.
    pub payload: Payload,
    /// Global send sequence number (used by FIFO/LIFO schedulers and for
    /// deterministic tie-breaking).
    pub seq: u64,
}

impl Envelope {
    /// Payload length in bits, as counted by the paper's `CC` measures.
    pub fn bits(&self) -> u64 {
        self.payload.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_counts_payload_length() {
        let e = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            payload: vec![0xff, 0x00].into(),
            seq: 7,
        };
        assert_eq!(e.bits(), 16);
    }

    #[test]
    fn payload_equality_is_byte_equality() {
        let a: Payload = vec![1, 2, 3].into();
        let b = a.clone();
        let c: Payload = vec![1, 2, 3].into();
        let d: Payload = vec![4].into();
        assert!(a.ptr_eq(&b));
        assert!(!a.ptr_eq(&c));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, d);
        assert_eq!(&*a, &[1, 2, 3]);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }
}
