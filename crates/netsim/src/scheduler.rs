//! Delivery schedulers: the source of asynchrony.
//!
//! The paper's model only promises that every sent message is delivered after
//! an *arbitrary, finite* delay. In the simulator this adversarial freedom is
//! captured by a [`Scheduler`]: at each step it selects which **link**
//! delivers its oldest in-flight message next. The event core keeps one FIFO
//! queue per directed link ([`crate::LinkTable`]), so a scheduling decision
//! ranges over the `O(active links)` non-empty links instead of the
//! `O(messages)` flat scan of the first-generation engine — and the default
//! [`RandomScheduler`] decides in `O(1)`.
//!
//! **Semantics note (link-indexed core).** Messages sharing a directed link
//! are delivered in send order (per-link FIFO, like a physical wire);
//! schedulers reorder freely *across* links. This is a legal refinement of
//! the paper's asynchrony model. Compared with the pre-refactor flat-scan
//! engine, [`FifoScheduler`] is byte-identical (the globally oldest message
//! is always some link's head), while [`RandomScheduler`] and
//! [`LifoScheduler`] pick among links rather than among individual messages,
//! so their interleavings — and transcripts — legitimately differ from old
//! runs whenever a link queues two or more messages. The campaign diff gate
//! compares reports produced by the *same* engine generation, so this change
//! shows up only when diffing against pre-refactor artifacts (expect pulse
//! p50/p95 shifts on random/lifo cells, never success-rate drops: Theorems 2
//! and 10 hold under every admissible schedule).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use fdn_graph::graph::Edge;

use crate::links::{LinkId, LinkView};

/// Chooses which non-empty link delivers its head (oldest message) next.
pub trait Scheduler {
    /// Returns the link (one of `view.active()`, which is guaranteed
    /// non-empty) whose head envelope is delivered next.
    fn next_link(&mut self, view: &LinkView<'_>) -> LinkId;

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Delivers the head of a uniformly random non-empty link (seeded, hence
/// reproducible). This is the default scheduler, and the reason the
/// link-indexed core schedules in O(1): one `gen_range` over the active set.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates the scheduler with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn next_link(&mut self, view: &LinkView<'_>) -> LinkId {
        let active = view.active();
        active[self.rng.gen_range(0..active.len())]
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Delivers messages in global send order (the most synchronous-looking
/// schedule). The globally oldest message is always the head of some link
/// (per-link queues are in send order), so this is exactly the pre-refactor
/// FIFO schedule, found in `O(active links)` instead of `O(messages)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn next_link(&mut self, view: &LinkView<'_>) -> LinkId {
        *view
            .active()
            .iter()
            .min_by_key(|&&l| view.head(l).seq)
            .expect("active set is non-empty")
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Delivers from the link with the most recently sent *head* — an
/// adversarially "unfair" schedule that maximises cross-link reordering
/// while (like every scheduler on the link-indexed core) preserving
/// per-link FIFO.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifoScheduler;

impl Scheduler for LifoScheduler {
    fn next_link(&mut self, view: &LinkView<'_>) -> LinkId {
        *view
            .active()
            .iter()
            .max_by_key(|&&l| view.head(l).seq)
            .expect("active set is non-empty")
    }

    fn name(&self) -> &'static str {
        "lifo"
    }
}

/// Starves a designated set of "slow" edges: links on those edges deliver
/// only when nothing else is in flight, and among them the freshest head goes
/// first. Models an adversary that delays specific links as long as the
/// model allows.
#[derive(Debug, Clone)]
pub struct EdgeDelayScheduler {
    slow: HashSet<Edge>,
    rng: StdRng,
}

impl EdgeDelayScheduler {
    /// Creates the scheduler with the given slow edges and seed (used to pick
    /// among the non-slow links).
    pub fn new<I: IntoIterator<Item = Edge>>(slow: I, seed: u64) -> Self {
        EdgeDelayScheduler {
            slow: slow.into_iter().collect(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn is_slow(&self, view: &LinkView<'_>, link: LinkId) -> bool {
        let (from, to) = view.ends(link);
        self.slow.contains(&Edge::new(from, to))
    }
}

impl Scheduler for EdgeDelayScheduler {
    fn next_link(&mut self, view: &LinkView<'_>) -> LinkId {
        // Two passes over the active set, no allocation: count the fast
        // links, then select the r-th one.
        let fast = view
            .active()
            .iter()
            .filter(|&&l| !self.is_slow(view, l))
            .count();
        if fast == 0 {
            return *view
                .active()
                .iter()
                .max_by_key(|&&l| view.head(l).seq)
                .expect("active set is non-empty");
        }
        let r = self.rng.gen_range(0..fast);
        *view
            .active()
            .iter()
            .filter(|&&l| !self.is_slow(view, l))
            .nth(r)
            .expect("r < fast link count")
    }

    fn name(&self) -> &'static str {
        "edge-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;
    use crate::links::LinkTable;
    use fdn_graph::{generators, NodeId};

    fn env(from: u32, to: u32, seq: u64) -> Envelope {
        Envelope {
            from: NodeId(from),
            to: NodeId(to),
            payload: vec![1].into(),
            seq,
        }
    }

    /// Three single-message links on a 4-cycle, seqs 10/11/12.
    fn table() -> LinkTable {
        let g = generators::cycle(4).unwrap();
        let mut t = LinkTable::new(&g);
        t.push(env(0, 1, 10));
        t.push(env(1, 2, 11));
        t.push(env(2, 3, 12));
        t
    }

    #[test]
    fn fifo_picks_the_link_with_the_oldest_head() {
        let t = table();
        let mut s = FifoScheduler;
        let link = s.next_link(&t.view());
        assert_eq!(t.view().head(link).seq, 10);
        assert_eq!(s.name(), "fifo");
    }

    #[test]
    fn fifo_follows_global_send_order_within_a_link() {
        // Two messages on one link plus a younger one elsewhere: FIFO drains
        // strictly by seq, which per-link queues make reachable (the oldest
        // is always a head).
        let g = generators::cycle(4).unwrap();
        let mut t = LinkTable::new(&g);
        t.push(env(0, 1, 5));
        t.push(env(0, 1, 6));
        t.push(env(3, 2, 7));
        let mut s = FifoScheduler;
        let mut order = Vec::new();
        while !t.is_empty() {
            let l = s.next_link(&t.view());
            order.push(t.pop(l).unwrap().seq);
        }
        assert_eq!(order, vec![5, 6, 7]);
    }

    #[test]
    fn lifo_picks_the_link_with_the_newest_head() {
        let t = table();
        let mut s = LifoScheduler;
        let link = s.next_link(&t.view());
        assert_eq!(t.view().head(link).seq, 12);
        assert_eq!(s.name(), "lifo");
    }

    #[test]
    fn lifo_preserves_fifo_within_each_link() {
        let g = generators::cycle(4).unwrap();
        let mut t = LinkTable::new(&g);
        t.push(env(0, 1, 1));
        t.push(env(0, 1, 9)); // newest overall, but behind seq 1 on its link
        t.push(env(1, 2, 2));
        let mut s = LifoScheduler;
        let l = s.next_link(&t.view());
        // The freshest *head* is seq 2 (link 1->2); seq 9 is queued behind 1.
        assert_eq!(t.view().head(l).seq, 2);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_picks_active_links() {
        let t = table();
        let mut a = RandomScheduler::new(99);
        let mut b = RandomScheduler::new(99);
        for _ in 0..50 {
            let la = a.next_link(&t.view());
            let lb = b.next_link(&t.view());
            assert_eq!(la, lb);
            assert!(t.view().active().contains(&la));
        }
        assert_eq!(a.name(), "random");
    }

    #[test]
    fn edge_delay_starves_slow_edges() {
        let slow = Edge::new(NodeId(0), NodeId(1));
        let mut s = EdgeDelayScheduler::new([slow], 5);
        let t = table();
        // The 0->1 link is slow: never chosen while others are active.
        for _ in 0..50 {
            let l = s.next_link(&t.view());
            assert_ne!(t.view().ends(l), (NodeId(0), NodeId(1)));
        }
        // When only slow-edge links remain they still deliver (finite
        // delay), freshest head first.
        let g = generators::cycle(4).unwrap();
        let mut only_slow = LinkTable::new(&g);
        only_slow.push(env(0, 1, 1));
        only_slow.push(env(1, 0, 2));
        let l = s.next_link(&only_slow.view());
        assert_eq!(only_slow.view().head(l).seq, 2);
        assert_eq!(s.name(), "edge-delay");
    }
}
