//! Delivery schedulers: the source of asynchrony.
//!
//! The paper's model only promises that every sent message is delivered after
//! an *arbitrary, finite* delay and that channels are not FIFO. In the
//! simulator this adversarial freedom is captured by a [`Scheduler`]: at each
//! step it selects which in-flight envelope is delivered next. Different
//! schedulers produce different interleavings; the correctness experiments
//! run each workload under many schedulers and seeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use fdn_graph::graph::Edge;

use crate::envelope::Envelope;

/// Chooses which in-flight message to deliver next.
pub trait Scheduler {
    /// Returns the index (into `inflight`) of the envelope to deliver.
    /// `inflight` is guaranteed to be non-empty.
    fn next(&mut self, inflight: &[Envelope]) -> usize;

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Delivers a uniformly random in-flight message (seeded, hence
/// reproducible). This is the default scheduler.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates the scheduler with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn next(&mut self, inflight: &[Envelope]) -> usize {
        self.rng.gen_range(0..inflight.len())
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Delivers messages in global send order (the most synchronous-looking
/// schedule).
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn next(&mut self, inflight: &[Envelope]) -> usize {
        inflight
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.seq)
            .map(|(i, _)| i)
            .expect("inflight is non-empty")
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Delivers the most recently sent message first — an adversarially
/// "unfair" schedule that maximises reordering.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifoScheduler;

impl Scheduler for LifoScheduler {
    fn next(&mut self, inflight: &[Envelope]) -> usize {
        inflight
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.seq)
            .map(|(i, _)| i)
            .expect("inflight is non-empty")
    }

    fn name(&self) -> &'static str {
        "lifo"
    }
}

/// Starves a designated set of "slow" edges: messages on those edges are
/// delivered only when nothing else is in flight, and among them the most
/// recently sent goes first. Models an adversary that delays specific links
/// as long as the model allows.
#[derive(Debug, Clone)]
pub struct EdgeDelayScheduler {
    slow: HashSet<Edge>,
    rng: StdRng,
}

impl EdgeDelayScheduler {
    /// Creates the scheduler with the given slow edges and seed (used to pick
    /// among the non-slow messages).
    pub fn new<I: IntoIterator<Item = Edge>>(slow: I, seed: u64) -> Self {
        EdgeDelayScheduler {
            slow: slow.into_iter().collect(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for EdgeDelayScheduler {
    fn next(&mut self, inflight: &[Envelope]) -> usize {
        let fast: Vec<usize> = inflight
            .iter()
            .enumerate()
            .filter(|(_, e)| !self.slow.contains(&Edge::new(e.from, e.to)))
            .map(|(i, _)| i)
            .collect();
        if fast.is_empty() {
            inflight
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.seq)
                .map(|(i, _)| i)
                .expect("inflight is non-empty")
        } else {
            fast[self.rng.gen_range(0..fast.len())]
        }
    }

    fn name(&self) -> &'static str {
        "edge-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdn_graph::NodeId;

    fn envs() -> Vec<Envelope> {
        vec![
            Envelope {
                from: NodeId(0),
                to: NodeId(1),
                payload: vec![1],
                seq: 10,
            },
            Envelope {
                from: NodeId(1),
                to: NodeId(2),
                payload: vec![1],
                seq: 11,
            },
            Envelope {
                from: NodeId(2),
                to: NodeId(3),
                payload: vec![1],
                seq: 12,
            },
        ]
    }

    #[test]
    fn fifo_picks_oldest() {
        let mut s = FifoScheduler;
        assert_eq!(s.next(&envs()), 0);
        assert_eq!(s.name(), "fifo");
    }

    #[test]
    fn lifo_picks_newest() {
        let mut s = LifoScheduler;
        assert_eq!(s.next(&envs()), 2);
        assert_eq!(s.name(), "lifo");
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let mut a = RandomScheduler::new(99);
        let mut b = RandomScheduler::new(99);
        for _ in 0..50 {
            let ia = a.next(&envs());
            let ib = b.next(&envs());
            assert_eq!(ia, ib);
            assert!(ia < 3);
        }
        assert_eq!(a.name(), "random");
    }

    #[test]
    fn edge_delay_starves_slow_edges() {
        let slow = Edge::new(NodeId(0), NodeId(1));
        let mut s = EdgeDelayScheduler::new([slow], 5);
        // Index 0 travels on the slow edge: never chosen while others exist.
        for _ in 0..50 {
            assert_ne!(s.next(&envs()), 0);
        }
        // When only slow-edge messages remain they are still delivered
        // (finite delay), newest first.
        let only_slow = vec![
            Envelope {
                from: NodeId(0),
                to: NodeId(1),
                payload: vec![1],
                seq: 1,
            },
            Envelope {
                from: NodeId(1),
                to: NodeId(0),
                payload: vec![1],
                seq: 2,
            },
        ];
        assert_eq!(s.next(&only_slow), 1);
        assert_eq!(s.name(), "edge-delay");
    }
}
