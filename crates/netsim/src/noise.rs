//! Channel noise models.
//!
//! The paper's *fully-defective* network applies **alteration noise**: once a
//! message `m ∈ {0,1}+` is sent, the receiver gets *some* `m' ∈ {0,1}+` — the
//! content may be rewritten arbitrarily, but the message can neither be
//! deleted nor can messages be injected. The models here implement exactly
//! that contract: [`NoiseModel::corrupt`] always returns a non-empty payload
//! and is invoked exactly once per sent message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use fdn_graph::graph::Edge;

use crate::envelope::Envelope;

/// A channel noise model. Implementations may keep internal state (e.g. an
/// RNG) and are invoked once per delivered message.
pub trait NoiseModel {
    /// Produces the payload actually delivered to the receiver for a message
    /// sent as `env.payload`. Must return a non-empty payload (the noise
    /// cannot delete messages).
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8>;

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str {
        "noise"
    }
}

/// The identity model: payloads are delivered untouched. Used for the
/// noiseless baseline runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Noiseless;

impl NoiseModel for Noiseless {
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8> {
        env.payload.clone()
    }

    fn name(&self) -> &'static str {
        "noiseless"
    }
}

/// Total corruption: every payload is replaced by random bytes of random
/// length (1..=8), irrespective of what was sent. This is the default model
/// for all fully-defective experiments: a content-oblivious algorithm must
/// behave identically under [`Noiseless`] and [`FullCorruption`].
#[derive(Debug, Clone)]
pub struct FullCorruption {
    rng: StdRng,
}

impl FullCorruption {
    /// Creates the model with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        FullCorruption {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl NoiseModel for FullCorruption {
    fn corrupt(&mut self, _env: &Envelope) -> Vec<u8> {
        let len = self.rng.gen_range(1..=8usize);
        (0..len).map(|_| self.rng.gen()).collect()
    }

    fn name(&self) -> &'static str {
        "full-corruption"
    }
}

/// Every payload is replaced by the single byte `1` — the canonical adversary
/// of the Theorem 20 impossibility proof ("the adversary corrupts the content
/// of any message to be '1'").
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantOne;

impl NoiseModel for ConstantOne {
    fn corrupt(&mut self, _env: &Envelope) -> Vec<u8> {
        vec![1]
    }

    fn name(&self) -> &'static str {
        "constant-one"
    }
}

/// Independent bit-flip noise with probability `p` per bit. Not used by the
/// paper's model directly, but useful to show that content-carrying protocols
/// break down long before total corruption.
#[derive(Debug, Clone)]
pub struct BitFlip {
    p: f64,
    rng: StdRng,
}

impl BitFlip {
    /// Creates the model flipping each bit independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "flip probability must be in [0, 1]"
        );
        BitFlip {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl NoiseModel for BitFlip {
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8> {
        let mut out = env.payload.clone();
        for byte in &mut out {
            for bit in 0..8 {
                if self.rng.gen_bool(self.p) {
                    *byte ^= 1 << bit;
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "bit-flip"
    }
}

/// Applies an inner noise model only on a designated set of edges and leaves
/// the rest of the network noiseless. This models the classical
/// "f Byzantine edges" setting the paper contrasts itself with, and the
/// single-bridge corruption of Theorem 3.
pub struct TargetedEdges<N> {
    edges: HashSet<Edge>,
    inner: N,
}

impl<N: NoiseModel> TargetedEdges<N> {
    /// Creates the model corrupting only the given undirected edges.
    pub fn new<I: IntoIterator<Item = Edge>>(edges: I, inner: N) -> Self {
        TargetedEdges {
            edges: edges.into_iter().collect(),
            inner,
        }
    }
}

impl<N: NoiseModel> NoiseModel for TargetedEdges<N> {
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8> {
        if self.edges.contains(&Edge::new(env.from, env.to)) {
            self.inner.corrupt(env)
        } else {
            env.payload.clone()
        }
    }

    fn name(&self) -> &'static str {
        "targeted-edges"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdn_graph::NodeId;

    fn env(payload: Vec<u8>) -> Envelope {
        Envelope {
            from: NodeId(0),
            to: NodeId(1),
            payload,
            seq: 0,
        }
    }

    #[test]
    fn noiseless_is_identity() {
        let mut n = Noiseless;
        assert_eq!(n.corrupt(&env(vec![1, 2, 3])), vec![1, 2, 3]);
        assert_eq!(n.name(), "noiseless");
    }

    #[test]
    fn full_corruption_never_deletes_and_is_deterministic_per_seed() {
        let mut a = FullCorruption::new(7);
        let mut b = FullCorruption::new(7);
        for i in 0..100u8 {
            let e = env(vec![i]);
            let ca = a.corrupt(&e);
            let cb = b.corrupt(&e);
            assert!(!ca.is_empty());
            assert!(ca.len() <= 8);
            assert_eq!(ca, cb);
        }
        assert_eq!(a.name(), "full-corruption");
    }

    #[test]
    fn full_corruption_actually_changes_content() {
        let mut n = FullCorruption::new(1);
        let original = vec![0xAA; 4];
        let changed = (0..50).any(|_| n.corrupt(&env(original.clone())) != original);
        assert!(changed);
    }

    #[test]
    fn constant_one() {
        let mut n = ConstantOne;
        assert_eq!(n.corrupt(&env(vec![9, 9, 9])), vec![1]);
        assert_eq!(n.name(), "constant-one");
    }

    #[test]
    fn bitflip_zero_probability_is_identity() {
        let mut n = BitFlip::new(0.0, 3);
        assert_eq!(n.corrupt(&env(vec![42, 43])), vec![42, 43]);
    }

    #[test]
    fn bitflip_one_probability_inverts_everything() {
        let mut n = BitFlip::new(1.0, 3);
        assert_eq!(n.corrupt(&env(vec![0x0F])), vec![0xF0]);
        assert_eq!(n.name(), "bit-flip");
    }

    #[test]
    #[should_panic]
    fn bitflip_rejects_bad_probability() {
        let _ = BitFlip::new(1.5, 0);
    }

    #[test]
    fn targeted_edges_only_corrupts_listed_edges() {
        let bridge = Edge::new(NodeId(0), NodeId(1));
        let mut n = TargetedEdges::new([bridge], ConstantOne);
        assert_eq!(n.corrupt(&env(vec![5, 6])), vec![1]);
        let other = Envelope {
            from: NodeId(2),
            to: NodeId(3),
            payload: vec![5, 6],
            seq: 0,
        };
        assert_eq!(n.corrupt(&other), vec![5, 6]);
        assert_eq!(n.name(), "targeted-edges");
    }
}
