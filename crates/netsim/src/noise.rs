//! Channel noise models.
//!
//! The paper's *fully-defective* network applies **alteration noise**: once a
//! message `m ∈ {0,1}+` is sent, the receiver gets *some* `m' ∈ {0,1}+` — the
//! content may be rewritten arbitrarily, but the message can neither be
//! deleted nor can messages be injected. The alteration models here implement
//! exactly that contract: [`NoiseModel::corrupt`] always returns a non-empty
//! payload and is invoked exactly once per sent message.
//!
//! A second group of models deliberately steps *outside* the paper's model to
//! probe where the no-deletion assumption is load-bearing: [`Omission`],
//! [`CrashLink`] and [`Burst`] may **delete** messages by overriding
//! [`NoiseModel::deliver`]. Follow-up work (e.g. content-oblivious leader
//! election under crash faults) asks exactly this boundary question; sweeping
//! these adversaries in a campaign measures *where* the Theorem 2 construction
//! breaks — expected loss of quiescence or success, never a panic or hang.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use fdn_graph::graph::Edge;

use crate::envelope::Envelope;

/// A channel noise model. Implementations may keep internal state (e.g. an
/// RNG) and are invoked once per scheduled delivery.
pub trait NoiseModel {
    /// Produces the payload actually delivered to the receiver for a message
    /// sent as `env.payload`. Must return a non-empty payload (alteration
    /// noise cannot delete messages).
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8>;

    /// The full channel action for one scheduled delivery: `Some(payload)` is
    /// handed to the receiver, `None` deletes the message. The default is the
    /// paper's contract — alteration only, never deletion — so only the
    /// deletion-side adversaries ([`Omission`], [`CrashLink`], [`Burst`])
    /// override this.
    fn deliver(&mut self, env: &Envelope) -> Option<Vec<u8>> {
        Some(self.corrupt(env))
    }

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str {
        "noise"
    }
}

/// The identity model: payloads are delivered untouched. Used for the
/// noiseless baseline runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Noiseless;

impl NoiseModel for Noiseless {
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8> {
        env.payload.to_vec()
    }

    fn name(&self) -> &'static str {
        "noiseless"
    }
}

/// Total corruption: every payload is replaced by random bytes of random
/// length (1..=8), irrespective of what was sent. This is the default model
/// for all fully-defective experiments: a content-oblivious algorithm must
/// behave identically under [`Noiseless`] and [`FullCorruption`].
#[derive(Debug, Clone)]
pub struct FullCorruption {
    rng: StdRng,
}

impl FullCorruption {
    /// Creates the model with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        FullCorruption {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl NoiseModel for FullCorruption {
    fn corrupt(&mut self, _env: &Envelope) -> Vec<u8> {
        let len = self.rng.gen_range(1..=8usize);
        (0..len).map(|_| self.rng.gen()).collect()
    }

    fn name(&self) -> &'static str {
        "full-corruption"
    }
}

/// Every payload is replaced by the single byte `1` — the canonical adversary
/// of the Theorem 20 impossibility proof ("the adversary corrupts the content
/// of any message to be '1'").
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantOne;

impl NoiseModel for ConstantOne {
    fn corrupt(&mut self, _env: &Envelope) -> Vec<u8> {
        vec![1]
    }

    fn name(&self) -> &'static str {
        "constant-one"
    }
}

/// Independent bit-flip noise with probability `p` per bit. Not used by the
/// paper's model directly, but useful to show that content-carrying protocols
/// break down long before total corruption.
#[derive(Debug, Clone)]
pub struct BitFlip {
    // fdn-lint: allow(D4) -- Bernoulli parameter for seeded per-bit draws, never accumulated
    p: f64,
    rng: StdRng,
}

impl BitFlip {
    /// Creates the model flipping each bit independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    // fdn-lint: allow(D4) -- probability parameter feeding seeded draws only
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(
            // fdn-lint: allow(D4) -- range check on the probability parameter
            (0.0..=1.0).contains(&p),
            "flip probability must be in [0, 1]"
        );
        BitFlip {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl NoiseModel for BitFlip {
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8> {
        let mut out = env.payload.to_vec();
        for byte in &mut out {
            for bit in 0..8 {
                if self.rng.gen_bool(self.p) {
                    *byte ^= 1 << bit;
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "bit-flip"
    }
}

/// Applies an inner noise model only on a designated set of edges and leaves
/// the rest of the network noiseless. This models the classical
/// "f Byzantine edges" setting the paper contrasts itself with, and the
/// single-bridge corruption of Theorem 3.
pub struct TargetedEdges<N> {
    edges: HashSet<Edge>,
    inner: N,
}

impl<N: NoiseModel> TargetedEdges<N> {
    /// Creates the model corrupting only the given undirected edges.
    pub fn new<I: IntoIterator<Item = Edge>>(edges: I, inner: N) -> Self {
        TargetedEdges {
            edges: edges.into_iter().collect(),
            inner,
        }
    }
}

impl<N: NoiseModel> NoiseModel for TargetedEdges<N> {
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8> {
        if self.edges.contains(&Edge::new(env.from, env.to)) {
            self.inner.corrupt(env)
        } else {
            env.payload.to_vec()
        }
    }

    fn deliver(&mut self, env: &Envelope) -> Option<Vec<u8>> {
        // Forward the full channel action, so a deletion-side inner model
        // (e.g. `Omission` on a single bridge) keeps its ability to drop.
        if self.edges.contains(&Edge::new(env.from, env.to)) {
            self.inner.deliver(env)
        } else {
            Some(env.payload.to_vec())
        }
    }

    fn name(&self) -> &'static str {
        "targeted-edges"
    }
}

/// Denominator of the [`Omission`] drop axis: rates are fixed-point parts
/// per million, so the axis can be parameterized a thousand times finer than
/// the per-mille labels campaigns sweep.
pub const OMISSION_DENOM: u32 = 1_000_000;

/// Independent message deletion: each scheduled delivery is dropped with
/// probability `drop_ppm / 1_000_000`, and delivered unaltered otherwise.
///
/// This is the classical omission-fault channel, which the paper's model
/// explicitly forbids. Content is left untouched so that sweeps isolate the
/// effect of deletion from the effect of alteration (the Theorem 2 engine is
/// content-oblivious, so corrupting dropped-channel content as well would not
/// change what breaks).
///
/// The drop axis is built for *re-probing*: every delivery draws one uniform
/// value from `0..`[`OMISSION_DENOM`] and drops iff it falls below the
/// threshold, so the RNG stream consumed is **independent of the rate**. Two
/// models with the same seed but different rates therefore see the *same*
/// uniform sequence, which couples their decisions monotonically: every
/// delivery dropped at the lower rate is also dropped at the higher one (for
/// as long as the simulated trajectories coincide). A bisection driver
/// walking the axis — `fdn-lab frontier` — gets nested drop sets per seed
/// instead of independently re-randomized ones, so probe verdicts move
/// smoothly with the rate.
#[derive(Debug, Clone)]
pub struct Omission {
    drop_ppm: u32,
    rng: StdRng,
}

impl Omission {
    /// Creates the model dropping `drop_per_mille` out of every 1000
    /// deliveries in expectation, with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `drop_per_mille` exceeds 1000.
    pub fn new(drop_per_mille: u16, seed: u64) -> Self {
        assert!(
            drop_per_mille <= 1000,
            "drop rate is per mille and must be <= 1000"
        );
        Omission::per_million(u32::from(drop_per_mille) * 1000, seed)
    }

    /// Creates the model at fixed-point resolution: `drop_ppm` out of every
    /// [`OMISSION_DENOM`] deliveries are dropped in expectation.
    ///
    /// # Panics
    ///
    /// Panics if `drop_ppm` exceeds [`OMISSION_DENOM`].
    pub fn per_million(drop_ppm: u32, seed: u64) -> Self {
        assert!(
            drop_ppm <= OMISSION_DENOM,
            "drop rate is per million and must be <= {OMISSION_DENOM}"
        );
        Omission {
            drop_ppm,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured drop rate in parts per million.
    pub fn drop_ppm(&self) -> u32 {
        self.drop_ppm
    }
}

impl NoiseModel for Omission {
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8> {
        env.payload.to_vec()
    }

    fn deliver(&mut self, env: &Envelope) -> Option<Vec<u8>> {
        // One rate-independent uniform draw per delivery (see the type docs:
        // this is what couples equal-seed models across rates).
        if self.rng.gen_range(0..OMISSION_DENOM) < self.drop_ppm {
            None
        } else {
            Some(env.payload.to_vec())
        }
    }

    fn name(&self) -> &'static str {
        "omission"
    }
}

/// A crash fault on one link: the undirected edge carrying the `at_pulse`-th
/// scheduled delivery (0-indexed) fails permanently — that delivery and every
/// later message on the same edge are deleted. Deliveries before the crash,
/// and on every other edge, pass unaltered.
///
/// Deterministic (no RNG): which edge crashes is a function of the schedule,
/// so a fixed scenario seed reproduces the exact crash.
#[derive(Debug, Clone, Copy)]
pub struct CrashLink {
    at_pulse: u64,
    seen: u64,
    crashed: Option<Edge>,
}

impl CrashLink {
    /// Creates the model crashing the link of the `at_pulse`-th delivery.
    pub fn new(at_pulse: u64) -> Self {
        CrashLink {
            at_pulse,
            seen: 0,
            crashed: None,
        }
    }

    /// The edge that crashed, once it has.
    pub fn crashed_edge(&self) -> Option<Edge> {
        self.crashed
    }
}

impl NoiseModel for CrashLink {
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8> {
        env.payload.to_vec()
    }

    fn deliver(&mut self, env: &Envelope) -> Option<Vec<u8>> {
        let edge = Edge::new(env.from, env.to);
        if self.crashed.is_none() && self.seen == self.at_pulse {
            self.crashed = Some(edge);
        }
        self.seen += 1;
        if self.crashed == Some(edge) {
            None
        } else {
            Some(env.payload.to_vec())
        }
    }

    fn name(&self) -> &'static str {
        "crash-link"
    }
}

/// Periodic burst deletion: deliveries are counted globally, and within every
/// window of `period` deliveries the first `len` are deleted (the rest pass
/// unaltered). Models correlated outages — e.g. a router blackout every few
/// pulses — as opposed to [`Omission`]'s independent drops. Deterministic.
#[derive(Debug, Clone, Copy)]
pub struct Burst {
    period: u64,
    len: u64,
    seen: u64,
}

impl Burst {
    /// Creates the model deleting the first `len` of every `period`
    /// deliveries.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `len` exceeds `period`.
    pub fn new(period: u64, len: u64) -> Self {
        assert!(period > 0, "burst period must be positive");
        assert!(len <= period, "burst length must not exceed the period");
        Burst {
            period,
            len,
            seen: 0,
        }
    }
}

impl NoiseModel for Burst {
    fn corrupt(&mut self, env: &Envelope) -> Vec<u8> {
        env.payload.to_vec()
    }

    fn deliver(&mut self, env: &Envelope) -> Option<Vec<u8>> {
        let phase = self.seen % self.period;
        self.seen += 1;
        if phase < self.len {
            None
        } else {
            Some(env.payload.to_vec())
        }
    }

    fn name(&self) -> &'static str {
        "burst"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdn_graph::NodeId;

    fn env(payload: Vec<u8>) -> Envelope {
        Envelope {
            from: NodeId(0),
            to: NodeId(1),
            payload: payload.into(),
            seq: 0,
        }
    }

    #[test]
    fn noiseless_is_identity() {
        let mut n = Noiseless;
        assert_eq!(n.corrupt(&env(vec![1, 2, 3])), vec![1, 2, 3]);
        assert_eq!(n.name(), "noiseless");
    }

    #[test]
    fn full_corruption_never_deletes_and_is_deterministic_per_seed() {
        let mut a = FullCorruption::new(7);
        let mut b = FullCorruption::new(7);
        for i in 0..100u8 {
            let e = env(vec![i]);
            let ca = a.corrupt(&e);
            let cb = b.corrupt(&e);
            assert!(!ca.is_empty());
            assert!(ca.len() <= 8);
            assert_eq!(ca, cb);
        }
        assert_eq!(a.name(), "full-corruption");
    }

    #[test]
    fn full_corruption_actually_changes_content() {
        let mut n = FullCorruption::new(1);
        let original = vec![0xAA; 4];
        let changed = (0..50).any(|_| n.corrupt(&env(original.clone())) != original);
        assert!(changed);
    }

    #[test]
    fn constant_one() {
        let mut n = ConstantOne;
        assert_eq!(n.corrupt(&env(vec![9, 9, 9])), vec![1]);
        assert_eq!(n.name(), "constant-one");
    }

    #[test]
    fn bitflip_zero_probability_is_identity() {
        let mut n = BitFlip::new(0.0, 3);
        assert_eq!(n.corrupt(&env(vec![42, 43])), vec![42, 43]);
    }

    #[test]
    fn bitflip_one_probability_inverts_everything() {
        let mut n = BitFlip::new(1.0, 3);
        assert_eq!(n.corrupt(&env(vec![0x0F])), vec![0xF0]);
        assert_eq!(n.name(), "bit-flip");
    }

    #[test]
    #[should_panic]
    fn bitflip_rejects_bad_probability() {
        let _ = BitFlip::new(1.5, 0);
    }

    #[test]
    fn alteration_models_never_delete_via_deliver() {
        let e = env(vec![3, 4]);
        assert_eq!(Noiseless.deliver(&e), Some(vec![3, 4]));
        assert_eq!(ConstantOne.deliver(&e), Some(vec![1]));
        let delivered = FullCorruption::new(2).deliver(&e).unwrap();
        assert!(!delivered.is_empty());
    }

    #[test]
    fn omission_drops_at_the_configured_rate() {
        let mut always = Omission::new(1000, 4);
        let mut never = Omission::new(0, 4);
        let e = env(vec![9]);
        assert!((0..100).all(|_| always.deliver(&e).is_none()));
        assert!((0..100).all(|_| never.deliver(&e) == Some(vec![9])));
        assert_eq!(always.name(), "omission");
        // Roughly half at 500 per mille, deterministic per seed.
        let count = |seed| {
            let mut n = Omission::new(500, seed);
            (0..1000).filter(|_| n.deliver(&e).is_none()).count()
        };
        assert!((350..650).contains(&count(7)));
        assert_eq!(count(7), count(7));
        // Surviving deliveries keep the payload unaltered.
        assert_eq!(never.corrupt(&e), vec![9]);
    }

    #[test]
    #[should_panic]
    fn omission_rejects_bad_rate() {
        let _ = Omission::new(1001, 0);
    }

    #[test]
    #[should_panic]
    fn omission_rejects_bad_ppm_rate() {
        let _ = Omission::per_million(OMISSION_DENOM + 1, 0);
    }

    #[test]
    fn omission_ppm_resolves_below_one_per_mille() {
        // 500 ppm = 0.5 per mille: far below the per-mille axis's smallest
        // nonzero rate, yet still a real (and deterministic) drop rate.
        let e = env(vec![2]);
        let drops = |ppm: u32, seed: u64| {
            let mut n = Omission::per_million(ppm, seed);
            (0..100_000).filter(|_| n.deliver(&e).is_none()).count()
        };
        let d = drops(500, 11);
        assert!((10..150).contains(&d), "got {d} drops at 500 ppm");
        assert_eq!(d, drops(500, 11), "deterministic per seed");
        assert_eq!(drops(0, 11), 0);
        assert_eq!(drops(OMISSION_DENOM, 11), 100_000);
        // The per-mille constructor is the coarse face of the same axis.
        assert_eq!(Omission::new(200, 3).drop_ppm(), 200_000);
        assert_eq!(Omission::per_million(200_000, 3).drop_ppm(), 200_000);
    }

    #[test]
    fn omission_equal_seeds_couple_monotonically_across_rates() {
        // The re-probing contract: with one seed, the drop set at a lower
        // rate is a subset of the drop set at any higher rate, because every
        // delivery consumes the same uniform draw regardless of the rate.
        let e = env(vec![4]);
        let drop_set = |ppm: u32| -> Vec<bool> {
            let mut n = Omission::per_million(ppm, 77);
            (0..2_000).map(|_| n.deliver(&e).is_none()).collect()
        };
        let rates = [50_000u32, 200_000, 450_000, 900_000];
        let sets: Vec<Vec<bool>> = rates.iter().map(|&r| drop_set(r)).collect();
        for w in sets.windows(2) {
            let nested = w[0].iter().zip(&w[1]).all(|(&low, &high)| !low || high);
            assert!(
                nested,
                "a delivery dropped at the lower rate survived the higher one"
            );
        }
        // And the coupling is strict somewhere: higher rates drop strictly more.
        let counts: Vec<usize> = sets
            .iter()
            .map(|s| s.iter().filter(|&&d| d).count())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "{counts:?}");
    }

    #[test]
    fn crash_link_kills_one_edge_permanently() {
        let mut n = CrashLink::new(2);
        let ab = env(vec![5]); // edge (0,1)
        let cd = Envelope {
            from: NodeId(2),
            to: NodeId(3),
            payload: vec![6].into(),
            seq: 0,
        };
        let ba = Envelope {
            from: NodeId(1),
            to: NodeId(0),
            payload: vec![7].into(),
            seq: 0,
        };
        assert_eq!(n.deliver(&ab), Some(vec![5])); // pulse 0: before the crash
        assert_eq!(n.deliver(&cd), Some(vec![6])); // pulse 1: before the crash
        assert_eq!(n.crashed_edge(), None);
        assert_eq!(n.deliver(&ab), None); // pulse 2: edge (0,1) crashes
        assert_eq!(n.crashed_edge(), Some(Edge::new(NodeId(0), NodeId(1))));
        assert_eq!(n.deliver(&cd), Some(vec![6])); // other edges keep working
        assert_eq!(n.deliver(&ba), None); // both directions are dead
        assert_eq!(n.name(), "crash-link");
    }

    #[test]
    fn crash_link_never_fires_past_the_run() {
        let mut n = CrashLink::new(1000);
        let e = env(vec![1]);
        assert!((0..100).all(|_| n.deliver(&e) == Some(vec![1])));
        assert_eq!(n.crashed_edge(), None);
    }

    #[test]
    fn burst_drops_periodic_prefixes() {
        let mut n = Burst::new(4, 2);
        let e = env(vec![8]);
        let pattern: Vec<bool> = (0..8).map(|_| n.deliver(&e).is_some()).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, true, false, false, true, true]
        );
        assert_eq!(n.name(), "burst");
        // len == 0 never drops; len == period always drops.
        let mut open = Burst::new(3, 0);
        assert!((0..9).all(|_| open.deliver(&e).is_some()));
        let mut closed = Burst::new(3, 3);
        assert!((0..9).all(|_| closed.deliver(&e).is_none()));
    }

    #[test]
    #[should_panic]
    fn burst_rejects_len_beyond_period() {
        let _ = Burst::new(2, 3);
    }

    #[test]
    fn targeted_edges_only_corrupts_listed_edges() {
        let bridge = Edge::new(NodeId(0), NodeId(1));
        let mut n = TargetedEdges::new([bridge], ConstantOne);
        assert_eq!(n.corrupt(&env(vec![5, 6])), vec![1]);
        let other = Envelope {
            from: NodeId(2),
            to: NodeId(3),
            payload: vec![5, 6].into(),
            seq: 0,
        };
        assert_eq!(n.corrupt(&other), vec![5, 6]);
        assert_eq!(n.name(), "targeted-edges");
    }

    #[test]
    fn targeted_edges_forwards_deletion_to_listed_edges_only() {
        let bridge = Edge::new(NodeId(0), NodeId(1));
        let mut n = TargetedEdges::new([bridge], Omission::new(1000, 5));
        // The listed edge drops everything (inner deliver is forwarded) …
        assert_eq!(n.deliver(&env(vec![5, 6])), None);
        // … while other edges deliver unaltered.
        let other = Envelope {
            from: NodeId(2),
            to: NodeId(3),
            payload: vec![5, 6].into(),
            seq: 0,
        };
        assert_eq!(n.deliver(&other), Some(vec![5, 6]));
    }
}
