//! The asynchronous black-box interface `π` and the noiseless baseline runner.
//!
//! The paper's simulators accept *any* asynchronous event-driven protocol as
//! a black box: the protocol hands the simulator messages it wants delivered
//! to neighbours, and the simulator hands back messages that were (logically)
//! received. [`InnerProtocol`] is that interface. The same protocol object can
//! also be run directly on a noiseless network via [`DirectRunner`], which is
//! how the equivalence experiments obtain their ground truth.

use fdn_graph::NodeId;

use crate::reactor::{Context, Reactor};

/// Destination of an inner-protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// A specific node (it must be a neighbour when running noiselessly; the
    /// content-oblivious simulators deliver to any node since every message
    /// traverses the whole cycle anyway).
    Node(NodeId),
    /// Every node (the broadcast extension of Remark 3, used heavily by the
    /// Robbins-cycle construction). Not supported by the noiseless
    /// [`DirectRunner`].
    Broadcast,
}

/// A message produced by an inner protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolMsg {
    /// Where the message should be delivered.
    pub dest: Dest,
    /// The message content.
    pub payload: Vec<u8>,
}

/// The interface through which an [`InnerProtocol`] emits messages.
#[derive(Debug)]
pub struct ProtocolIo {
    node: NodeId,
    neighbors: Vec<NodeId>,
    sends: Vec<ProtocolMsg>,
}

impl ProtocolIo {
    /// Creates an IO handle for `node` with the given neighbour list.
    pub fn new(node: NodeId, neighbors: Vec<NodeId>) -> Self {
        ProtocolIo {
            node,
            neighbors,
            sends: Vec::new(),
        }
    }

    /// The node running the protocol.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's neighbours in the (noiseless) communication graph.
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Queues a message for a specific node.
    pub fn send(&mut self, to: NodeId, payload: Vec<u8>) {
        self.sends.push(ProtocolMsg {
            dest: Dest::Node(to),
            payload,
        });
    }

    /// Queues a broadcast message (destination `*`, Remark 3).
    pub fn broadcast(&mut self, payload: Vec<u8>) {
        self.sends.push(ProtocolMsg {
            dest: Dest::Broadcast,
            payload,
        });
    }

    /// Number of messages queued so far.
    pub fn pending(&self) -> usize {
        self.sends.len()
    }

    /// Drains the queued messages (used by runners and simulators).
    pub fn take_sends(&mut self) -> Vec<ProtocolMsg> {
        std::mem::take(&mut self.sends)
    }
}

/// An asynchronous, event-driven, deterministic protocol designed for a
/// noiseless network — the `π` of the paper.
///
/// Implementations must be deterministic functions of their input and the
/// sequence of deliveries (the paper restricts attention to deterministic
/// protocols).
pub trait InnerProtocol {
    /// Called once at the start of the execution; the protocol may emit its
    /// initial messages.
    fn on_init(&mut self, io: &mut ProtocolIo);

    /// Called when a message from `from` is delivered.
    fn on_deliver(&mut self, from: NodeId, payload: &[u8], io: &mut ProtocolIo);

    /// The node's irrevocable output, if already written.
    fn output(&self) -> Option<Vec<u8>> {
        None
    }
}

/// Boxed protocols are protocols, which lets heterogeneous sweep harnesses
/// spawn type-erased instances (`Box<dyn InnerProtocol + Send>`) through the
/// same generic runners as concrete ones.
impl<P: InnerProtocol + ?Sized> InnerProtocol for Box<P> {
    fn on_init(&mut self, io: &mut ProtocolIo) {
        (**self).on_init(io);
    }

    fn on_deliver(&mut self, from: NodeId, payload: &[u8], io: &mut ProtocolIo) {
        (**self).on_deliver(from, payload, io);
    }

    fn output(&self) -> Option<Vec<u8>> {
        (**self).output()
    }
}

/// Runs an [`InnerProtocol`] directly as a [`Reactor`] on the (noiseless)
/// network — the baseline execution the simulated one is compared against.
///
/// `Dest::Broadcast` is not meaningful on a bare network.
///
/// # Panics
///
/// Panics (when driven by the engine) if the protocol emits a broadcast or a
/// message to a non-neighbour.
#[derive(Debug)]
pub struct DirectRunner<P> {
    inner: P,
    started: bool,
}

impl<P: InnerProtocol> DirectRunner<P> {
    /// Wraps a protocol instance.
    pub fn new(inner: P) -> Self {
        DirectRunner {
            inner,
            started: false,
        }
    }

    /// Read access to the wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the runner and returns the wrapped protocol.
    pub fn into_inner(self) -> P {
        self.inner
    }

    fn flush(io: &mut ProtocolIo, ctx: &mut Context) {
        for msg in io.take_sends() {
            match msg.dest {
                Dest::Node(to) => ctx.send(to, msg.payload),
                Dest::Broadcast => {
                    panic!(
                        "Dest::Broadcast is only supported under the content-oblivious simulators"
                    )
                }
            }
        }
    }
}

impl<P: InnerProtocol> Reactor for DirectRunner<P> {
    fn on_start(&mut self, ctx: &mut Context) {
        self.started = true;
        let mut io = ProtocolIo::new(ctx.node(), ctx.neighbors().to_vec());
        self.inner.on_init(&mut io);
        Self::flush(&mut io, ctx);
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8], ctx: &mut Context) {
        let mut io = ProtocolIo::new(ctx.node(), ctx.neighbors().to_vec());
        self.inner.on_deliver(from, payload, &mut io);
        Self::flush(&mut io, ctx);
    }

    fn output(&self) -> Option<Vec<u8>> {
        self.inner.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EchoOnce {
        echoed: bool,
        out: Option<Vec<u8>>,
    }

    impl InnerProtocol for EchoOnce {
        fn on_init(&mut self, io: &mut ProtocolIo) {
            if io.node() == NodeId(0) {
                io.send(NodeId(1), vec![42]);
            }
        }
        fn on_deliver(&mut self, from: NodeId, payload: &[u8], io: &mut ProtocolIo) {
            if !self.echoed {
                self.echoed = true;
                self.out = Some(payload.to_vec());
                io.send(from, payload.to_vec());
            }
        }
        fn output(&self) -> Option<Vec<u8>> {
            self.out.clone()
        }
    }

    #[test]
    fn protocol_io_collects_messages() {
        let mut io = ProtocolIo::new(NodeId(3), vec![NodeId(1), NodeId(2)]);
        assert_eq!(io.node(), NodeId(3));
        assert_eq!(io.neighbors(), &[NodeId(1), NodeId(2)]);
        io.send(NodeId(1), vec![7]);
        io.broadcast(vec![9]);
        assert_eq!(io.pending(), 2);
        let sends = io.take_sends();
        assert_eq!(
            sends[0],
            ProtocolMsg {
                dest: Dest::Node(NodeId(1)),
                payload: vec![7]
            }
        );
        assert_eq!(
            sends[1],
            ProtocolMsg {
                dest: Dest::Broadcast,
                payload: vec![9]
            }
        );
        assert_eq!(io.pending(), 0);
    }

    #[test]
    fn direct_runner_bridges_protocol_to_reactor() {
        let mut runner = DirectRunner::new(EchoOnce {
            echoed: false,
            out: None,
        });
        let neighbors = [NodeId(1)];
        let mut ctx = Context::new(NodeId(0), &neighbors);
        runner.on_start(&mut ctx);
        assert_eq!(ctx.take_outbox(), vec![(NodeId(1), vec![42].into())]);
        let mut ctx2 = Context::new(NodeId(0), &neighbors);
        runner.on_message(NodeId(1), &[5], &mut ctx2);
        assert_eq!(ctx2.take_outbox(), vec![(NodeId(1), vec![5].into())]);
        assert_eq!(runner.output(), Some(vec![5]));
        assert_eq!(runner.inner().out, Some(vec![5]));
        let inner = runner.into_inner();
        assert!(inner.echoed);
    }

    #[test]
    #[should_panic]
    fn direct_runner_rejects_broadcast() {
        struct Broadcaster;
        impl InnerProtocol for Broadcaster {
            fn on_init(&mut self, io: &mut ProtocolIo) {
                io.broadcast(vec![1]);
            }
            fn on_deliver(&mut self, _f: NodeId, _p: &[u8], _io: &mut ProtocolIo) {}
        }
        let mut runner = DirectRunner::new(Broadcaster);
        let neighbors = [NodeId(1)];
        let mut ctx = Context::new(NodeId(0), &neighbors);
        runner.on_start(&mut ctx);
    }
}
