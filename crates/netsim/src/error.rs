//! Error type for the network simulator.

use std::fmt;

use fdn_graph::{GraphError, NodeId};

/// Errors surfaced by [`crate::Simulation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The number of reactors handed to the simulation does not match the
    /// number of graph nodes.
    NodeCountMismatch { nodes: usize, reactors: usize },
    /// A warm-start link table was registered for a different topology than
    /// the graph it is being reused with: the directed-link counts differ.
    LinkCountMismatch { links: usize, expected: usize },
    /// A warm-start link table has the right link count but lacks a link for
    /// one of the graph's adjacencies — it was registered for a different
    /// graph that merely has the same size.
    LinkTopologyMismatch { from: NodeId, to: NodeId },
    /// A reactor attempted to send to a node that is not its neighbour in the
    /// communication graph.
    NotNeighbor { from: NodeId, to: NodeId },
    /// A reactor attempted to send an empty message; the paper's model always
    /// transfers at least one bit (a pulse), and an empty payload could be
    /// confused with a deleted message.
    EmptyPayload { from: NodeId, to: NodeId },
    /// The step limit was exhausted before the network reached quiescence.
    StepLimitExceeded { limit: u64 },
    /// An underlying graph error.
    Graph(GraphError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NodeCountMismatch { nodes, reactors } => {
                write!(
                    f,
                    "graph has {nodes} nodes but {reactors} reactors were provided"
                )
            }
            SimError::LinkCountMismatch { links, expected } => {
                write!(
                    f,
                    "link table holds {links} links but the graph needs {expected}"
                )
            }
            SimError::LinkTopologyMismatch { from, to } => {
                write!(
                    f,
                    "link table has no link for the graph adjacency {from} -> {to}"
                )
            }
            SimError::NotNeighbor { from, to } => {
                write!(f, "node {from} attempted to send to non-neighbour {to}")
            }
            SimError::EmptyPayload { from, to } => {
                write!(f, "node {from} attempted to send an empty message to {to}")
            }
            SimError::StepLimitExceeded { limit } => {
                write!(
                    f,
                    "step limit of {limit} deliveries exceeded before quiescence"
                )
            }
            SimError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SimError {
    fn from(e: GraphError) -> Self {
        SimError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let errs: Vec<SimError> = vec![
            SimError::NodeCountMismatch {
                nodes: 3,
                reactors: 2,
            },
            SimError::LinkCountMismatch {
                links: 8,
                expected: 10,
            },
            SimError::LinkTopologyMismatch {
                from: NodeId(3),
                to: NodeId(4),
            },
            SimError::NotNeighbor {
                from: NodeId(0),
                to: NodeId(5),
            },
            SimError::EmptyPayload {
                from: NodeId(0),
                to: NodeId(1),
            },
            SimError::StepLimitExceeded { limit: 100 },
            SimError::Graph(GraphError::NotConnected),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn graph_error_converts_and_sources() {
        let e: SimError = GraphError::NotTwoEdgeConnected.into();
        assert!(matches!(e, SimError::Graph(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&SimError::StepLimitExceeded { limit: 1 }).is_none());
    }
}
