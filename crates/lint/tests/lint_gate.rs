//! End-to-end tests of the `fdn-lint` binary: the exit-code gate contract,
//! byte-determinism of the JSON report, the seeded-violation fixture, and
//! the baseline add/remove round-trip.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Runs the `fdn-lint` binary (cargo builds it for integration tests and
/// exposes its path via `CARGO_BIN_EXE_fdn-lint`).
fn fdn_lint(args: &[&str], cwd: Option<&Path>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fdn-lint"));
    cmd.args(args);
    if let Some(dir) = cwd {
        cmd.current_dir(dir);
    }
    cmd.output().expect("fdn-lint binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

/// The crate directory (where `tests/fixtures/` lives).
fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The workspace root, two levels up from `crates/lint`.
fn workspace_root() -> PathBuf {
    crate_dir()
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn fixture_path() -> String {
    crate_dir()
        .join("tests/fixtures/violations.rs")
        .to_string_lossy()
        .into_owned()
}

/// A scratch directory unique to one test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdn-lint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn violation_fixture_trips_every_rule_and_exits_2() {
    let out = fdn_lint(
        &[
            "--apply-all-rules",
            "--no-baseline",
            "--format",
            "json",
            &fixture_path(),
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(2), "seeded violations must gate");
    let json = stdout(&out);
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "P1"] {
        assert!(
            json.contains(&format!("\"rule\": \"{rule}\"")),
            "fixture must trip {rule}; report was:\n{json}"
        );
    }
    // The justified suppression is honoured: exactly one D6 finding (the
    // bare `unsafe`), not two.
    assert_eq!(json.matches("\"rule\": \"D6\"").count(), 1);
    // Decoys stay invisible: nothing is reported from the comment/string
    // section of the fixture except the deliberately-unsuppressed println.
    assert!(!json.contains("is invisible"));
}

#[test]
fn json_report_is_byte_deterministic() {
    let args = [
        "--apply-all-rules",
        "--no-baseline",
        "--format",
        "json",
        &fixture_path(),
    ];
    let a = fdn_lint(&args, None);
    let b = fdn_lint(&args, None);
    assert_eq!(a.stdout, b.stdout, "same scan, different bytes");
    assert_eq!(a.status.code(), b.status.code());
}

#[test]
fn workspace_self_scan_is_clean() {
    let root = workspace_root();
    let out = fdn_lint(&["--format", "json"], Some(&root));
    let json = stdout(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "the workspace must lint clean against its committed baseline:\n{json}"
    );
    assert!(
        json.contains("\"new\": 0"),
        "no unbaselined findings:\n{json}"
    );
    // The committed baseline is meant to stay (near-)empty and fresh.
    assert!(
        json.contains("\"stale_baseline_entries\": []"),
        "stale baseline entries should be removed:\n{json}"
    );
}

#[test]
fn baseline_round_trip_add_and_remove() {
    let dir = scratch("baseline");
    let src = dir.join("src");
    std::fs::create_dir_all(&src).unwrap();
    let file = src.join("engine.rs");
    std::fs::write(&file, "fn f() { let t = std::time::Instant::now(); }\n").unwrap();

    let root = dir.to_string_lossy().into_owned();
    // Fresh violation, no baseline: exit 2.
    let out = fdn_lint(&["--root", &root, "--format", "json"], Some(&dir));
    assert_eq!(out.status.code(), Some(2));
    assert!(stdout(&out).contains("\"rule\": \"D1\""));

    // Grandfather it.
    let out = fdn_lint(&["--root", &root, "--write-baseline"], Some(&dir));
    assert_eq!(out.status.code(), Some(0));
    let baseline_text = std::fs::read_to_string(dir.join("lint-baseline.json")).unwrap();
    assert!(baseline_text.contains("\"rule\": \"D1\""));

    // Same scan now passes, finding reported as baselined.
    let out = fdn_lint(&["--root", &root, "--format", "json"], Some(&dir));
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("\"status\": \"baselined\""));

    // A *new* violation on another line still gates.
    std::fs::write(
        &file,
        "fn f() { let t = std::time::Instant::now(); }\nfn g() { println!(\"hi\"); }\n",
    )
    .unwrap();
    let out = fdn_lint(&["--root", &root, "--format", "json"], Some(&dir));
    assert_eq!(out.status.code(), Some(2));
    let json = stdout(&out);
    assert!(json.contains("\"new\": 1"), "{json}");
    assert!(json.contains("\"baselined\": 1"), "{json}");

    // Fixing the grandfathered violation leaves its entry stale (reported,
    // not fatal).
    std::fs::write(&file, "fn f() {}\n").unwrap();
    let out = fdn_lint(&["--root", &root, "--format", "json"], Some(&dir));
    assert_eq!(out.status.code(), Some(0));
    let json = stdout(&out);
    assert!(json.contains("\"stale_baseline_entries\": [\n"), "{json}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn markdown_report_carries_the_rule_table() {
    let out = fdn_lint(
        &[
            "--apply-all-rules",
            "--no-baseline",
            "--format",
            "md",
            &fixture_path(),
        ],
        None,
    );
    let md = stdout(&out);
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "P1"] {
        assert!(md.contains(&format!("| {rule} |")), "rule table row {rule}");
    }
    assert!(md.contains("## Findings"));
    assert!(md.contains("violations.rs"));
}

#[test]
fn malformed_baseline_is_a_usage_error_not_a_gate_result() {
    let dir = scratch("badbase");
    std::fs::write(dir.join("lib.rs"), "fn ok() {}\n").unwrap();
    std::fs::write(dir.join("lint-baseline.json"), "{ not json").unwrap();
    let root = dir.to_string_lossy().into_owned();
    let out = fdn_lint(&["--root", &root], Some(&dir));
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_and_list_rules_succeed() {
    for flag in ["--help", "--list-rules"] {
        let out = fdn_lint(&[flag], None);
        assert_eq!(out.status.code(), Some(0), "{flag}");
        assert!(stdout(&out).contains("D1"));
    }
}
