//! End-to-end tests of the `fdn-lint` binary: the exit-code gate contract,
//! byte-determinism of the JSON report, the seeded-violation fixture, and
//! the baseline add/remove round-trip.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Runs the `fdn-lint` binary (cargo builds it for integration tests and
/// exposes its path via `CARGO_BIN_EXE_fdn-lint`).
fn fdn_lint(args: &[&str], cwd: Option<&Path>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fdn-lint"));
    cmd.args(args);
    if let Some(dir) = cwd {
        cmd.current_dir(dir);
    }
    cmd.output().expect("fdn-lint binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

/// The crate directory (where `tests/fixtures/` lives).
fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The workspace root, two levels up from `crates/lint`.
fn workspace_root() -> PathBuf {
    crate_dir()
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn fixture_path() -> String {
    crate_dir()
        .join("tests/fixtures/violations.rs")
        .to_string_lossy()
        .into_owned()
}

/// A scratch directory unique to one test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdn-lint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn violation_fixture_trips_every_rule_and_exits_2() {
    let out = fdn_lint(
        &[
            "--apply-all-rules",
            "--no-baseline",
            "--format",
            "json",
            &fixture_path(),
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(2), "seeded violations must gate");
    let json = stdout(&out);
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "F1", "F2", "F3", "P1"] {
        assert!(
            json.contains(&format!("\"rule\": \"{rule}\"")),
            "fixture must trip {rule}; report was:\n{json}"
        );
    }
    // The justified suppression is honoured: exactly one D6 finding (the
    // bare `unsafe`), not two.
    assert_eq!(json.matches("\"rule\": \"D6\"").count(), 1);
    // The sorting boundary is honoured: exactly one F2 (the unsorted pair),
    // not two — `stable_rows`/`render_sorted_rows` stays out of the report.
    assert_eq!(json.matches("\"rule\": \"F2\"").count(), 1);
    // Flow findings carry their call path for `fdn-lint why`.
    assert!(json.contains("\"path\": ["), "{json}");
    assert!(json.contains("helper_now_pulses"), "{json}");
    assert!(json.contains("render_cells"), "{json}");
    // Decoys stay invisible: nothing is reported from the comment/string
    // section of the fixture except the deliberately-unsuppressed println.
    assert!(!json.contains("is invisible"));
}

#[test]
fn json_report_is_byte_deterministic() {
    let args = [
        "--apply-all-rules",
        "--no-baseline",
        "--format",
        "json",
        &fixture_path(),
    ];
    let a = fdn_lint(&args, None);
    let b = fdn_lint(&args, None);
    assert_eq!(a.stdout, b.stdout, "same scan, different bytes");
    assert_eq!(a.status.code(), b.status.code());
}

#[test]
fn workspace_self_scan_is_clean() {
    let root = workspace_root();
    let out = fdn_lint(&["--format", "json"], Some(&root));
    let json = stdout(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "the workspace must lint clean against its committed baseline:\n{json}"
    );
    assert!(
        json.contains("\"new\": 0"),
        "no unbaselined findings:\n{json}"
    );
    // The committed baseline is meant to stay (near-)empty and fresh.
    assert!(
        json.contains("\"stale_baseline_entries\": []"),
        "stale baseline entries should be removed:\n{json}"
    );
}

#[test]
fn workspace_walk_covers_every_source_tree() {
    // Independent enumeration of the real tree, applying only the
    // *documented* exclusions (target/, dot-dirs, tests/fixtures). If
    // `discover` ever diverges — a new skip rule, a missed directory class —
    // this test names the exact paths that fell out of (or crept into) the
    // lint gate.
    fn enumerate(dir: &Path, out: &mut Vec<PathBuf>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                if name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests") {
                    continue;
                }
                enumerate(&path, out);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }

    let root = workspace_root();
    let mut expected = Vec::new();
    enumerate(&root, &mut expected);
    expected.sort();
    let walked = fdn_lint::discover(&root).unwrap();
    let to_rel = |ps: &[PathBuf]| {
        ps.iter()
            .map(|p| fdn_lint::relative(&root, p))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        to_rel(&walked),
        to_rel(&expected),
        "discover() and the documented exclusion rules disagree"
    );

    // Document (and defend) one representative per covered source tree:
    // root crate, root examples/, root tests/, crate tests/, benches/,
    // bin targets and the vendored shims are all inside the gate.
    let rels = to_rel(&walked);
    for must_cover in [
        "src/lib.rs",
        "examples/quickstart.rs",
        "tests/equivalence.rs",
        "crates/core/tests/construction.rs",
        "crates/bench/benches/end_to_end.rs",
        "crates/bench/src/bin/report.rs",
        "crates/shims/rand/src/lib.rs",
    ] {
        assert!(
            rels.contains(&must_cover.to_string()),
            "walk lost {must_cover}"
        );
    }
    assert!(
        !rels.iter().any(|r| r.contains("tests/fixtures/")),
        "the seeded-violation corpus must stay out of the default walk"
    );
}

#[test]
fn baseline_round_trip_add_and_remove() {
    let dir = scratch("baseline");
    let src = dir.join("src");
    std::fs::create_dir_all(&src).unwrap();
    let file = src.join("engine.rs");
    std::fs::write(&file, "fn f() { let t = std::time::Instant::now(); }\n").unwrap();

    let root = dir.to_string_lossy().into_owned();
    // Fresh violation, no baseline: exit 2.
    let out = fdn_lint(&["--root", &root, "--format", "json"], Some(&dir));
    assert_eq!(out.status.code(), Some(2));
    assert!(stdout(&out).contains("\"rule\": \"D1\""));

    // Grandfather it.
    let out = fdn_lint(&["--root", &root, "--write-baseline"], Some(&dir));
    assert_eq!(out.status.code(), Some(0));
    let baseline_text = std::fs::read_to_string(dir.join("lint-baseline.json")).unwrap();
    assert!(baseline_text.contains("\"rule\": \"D1\""));

    // Same scan now passes, finding reported as baselined.
    let out = fdn_lint(&["--root", &root, "--format", "json"], Some(&dir));
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("\"status\": \"baselined\""));

    // A *new* violation on another line still gates.
    std::fs::write(
        &file,
        "fn f() { let t = std::time::Instant::now(); }\nfn g() { println!(\"hi\"); }\n",
    )
    .unwrap();
    let out = fdn_lint(&["--root", &root, "--format", "json"], Some(&dir));
    assert_eq!(out.status.code(), Some(2));
    let json = stdout(&out);
    assert!(json.contains("\"new\": 1"), "{json}");
    assert!(json.contains("\"baselined\": 1"), "{json}");

    // Fixing the grandfathered violation leaves its entry stale (reported,
    // not fatal).
    std::fs::write(&file, "fn f() {}\n").unwrap();
    let out = fdn_lint(&["--root", &root, "--format", "json"], Some(&dir));
    assert_eq!(out.status.code(), Some(0));
    let json = stdout(&out);
    assert!(json.contains("\"stale_baseline_entries\": [\n"), "{json}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn markdown_report_carries_the_rule_table() {
    let out = fdn_lint(
        &[
            "--apply-all-rules",
            "--no-baseline",
            "--format",
            "md",
            &fixture_path(),
        ],
        None,
    );
    let md = stdout(&out);
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "F1", "F2", "F3", "P1"] {
        assert!(md.contains(&format!("| {rule} |")), "rule table row {rule}");
    }
    assert!(md.contains("## Findings"));
    assert!(md.contains("violations.rs"));
}

#[test]
fn github_format_emits_workflow_error_annotations() {
    let out = fdn_lint(
        &[
            "--apply-all-rules",
            "--no-baseline",
            "--format",
            "github",
            &fixture_path(),
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(2));
    let text = stdout(&out);
    assert!(
        text.lines().any(|l| l.starts_with("::error file=")),
        "expected ::error annotations, got:\n{text}"
    );
    // Every annotation carries a line= property and a rule title.
    for line in text.lines().filter(|l| l.starts_with("::error")) {
        assert!(line.contains(",line="), "{line}");
        assert!(line.contains(",title="), "{line}");
    }
    // Flow findings append their call path to the annotation message.
    assert!(text.contains("[path:"), "{text}");
}

#[test]
fn prune_baseline_drops_stale_entries_and_keeps_live_ones() {
    let dir = scratch("prune");
    let src = dir.join("src");
    std::fs::create_dir_all(&src).unwrap();
    let file = src.join("engine.rs");
    std::fs::write(
        &file,
        "fn f() { let t = std::time::Instant::now(); }\nfn g() { println!(\"hi\"); }\n",
    )
    .unwrap();

    let root = dir.to_string_lossy().into_owned();
    // Grandfather both findings, then fix only the D1.
    let out = fdn_lint(&["--root", &root, "--write-baseline"], Some(&dir));
    assert_eq!(out.status.code(), Some(0));
    std::fs::write(&file, "fn f() {}\nfn g() { println!(\"hi\"); }\n").unwrap();

    // Prune: the stale D1 entry is dropped, the live D5 entry survives.
    let out = fdn_lint(
        &["--root", &root, "--prune-baseline", "--format", "json"],
        Some(&dir),
    );
    assert_eq!(out.status.code(), Some(0));
    let baseline_text = std::fs::read_to_string(dir.join("lint-baseline.json")).unwrap();
    assert!(
        !baseline_text.contains("\"rule\": \"D1\""),
        "{baseline_text}"
    );
    assert!(
        baseline_text.contains("\"rule\": \"D5\""),
        "{baseline_text}"
    );
    // The same scan's report sees no stale entries after the rewrite.
    assert!(stdout(&out).contains("\"stale_baseline_entries\": []"));

    // Round-trip: pruning again is a no-op on the file bytes.
    let before = std::fs::read(dir.join("lint-baseline.json")).unwrap();
    let out = fdn_lint(&["--root", &root, "--prune-baseline"], Some(&dir));
    assert_eq!(out.status.code(), Some(0));
    let after = std::fs::read(dir.join("lint-baseline.json")).unwrap();
    assert_eq!(before, after, "idempotent prune must not rewrite bytes");

    // --prune-baseline conflicts with the other baseline modes.
    let out = fdn_lint(
        &["--root", &root, "--prune-baseline", "--write-baseline"],
        Some(&dir),
    );
    assert_eq!(out.status.code(), Some(1));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn graph_export_is_byte_deterministic_and_well_formed() {
    let root = workspace_root();
    let a = fdn_lint(&["graph", "--format", "json"], Some(&root));
    let b = fdn_lint(&["graph", "--format", "json"], Some(&root));
    assert_eq!(a.status.code(), Some(0));
    assert_eq!(a.stdout, b.stdout, "same workspace, different graph bytes");
    let json = stdout(&a);
    for key in ["\"tool\": \"fdn-lint-graph\"", "\"fns\":", "\"edges\":"] {
        assert!(json.contains(key), "missing {key}");
    }
    // The flow roles ride along so the export documents the taint model.
    assert!(json.contains("\"sink\""), "{}", &json[..500]);

    let dot = fdn_lint(&["graph", "--format", "dot"], Some(&root));
    assert_eq!(dot.status.code(), Some(0));
    assert!(stdout(&dot).starts_with("digraph"));
}

#[test]
fn why_prints_the_source_to_sink_path() {
    let dir = scratch("why");
    let src = dir.join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("lib.rs"),
        "fn helper_now() -> u64 { let t = std::time::Instant::now(); 0 }\n\
         fn render_cells() -> u64 { helper_now() }\n",
    )
    .unwrap();

    let root = dir.to_string_lossy().into_owned();
    let out = fdn_lint(&["why", "--root", &root, "src/lib.rs:1"], Some(&dir));
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("[F1]"), "{text}");
    assert!(text.contains("source"), "{text}");
    assert!(text.contains("via"), "{text}");
    assert!(text.contains("render_cells"), "{text}");

    // A location with no flow finding says so instead of printing nothing.
    let out = fdn_lint(&["why", "--root", &root, "src/lib.rs:99"], Some(&dir));
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("no flow finding anchored at"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_baseline_is_a_usage_error_not_a_gate_result() {
    let dir = scratch("badbase");
    std::fs::write(dir.join("lib.rs"), "fn ok() {}\n").unwrap();
    std::fs::write(dir.join("lint-baseline.json"), "{ not json").unwrap();
    let root = dir.to_string_lossy().into_owned();
    let out = fdn_lint(&["--root", &root], Some(&dir));
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_and_list_rules_succeed() {
    for flag in ["--help", "--list-rules"] {
        let out = fdn_lint(&[flag], None);
        assert_eq!(out.status.code(), Some(0), "{flag}");
        assert!(stdout(&out).contains("D1"));
    }
}
