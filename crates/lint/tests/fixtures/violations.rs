//! Seeded-violation corpus for the CI lint gate.
//!
//! This file is NOT compiled (it sits below `tests/fixtures/`, which cargo
//! ignores and the default `fdn-lint` walk excludes). It exists to prove,
//! on every CI run, that the gate still *fails* when it should: linted
//! explicitly with `--apply-all-rules`, it must produce at least one
//! finding for every rule D1–D6, the flow rules F1–F3, plus a P1, and
//! exit 2.

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

/// D1 — wall clock reads.
fn wall_clock() -> u128 {
    let started = Instant::now();
    let _epoch = SystemTime::now();
    started.elapsed().as_millis()
}

/// D2 — unordered containers (either identifier fires).
fn unordered_report() -> (HashMap<String, u64>, HashSet<String>) {
    (HashMap::new(), HashSet::new())
}

/// D3 — RNG construction outside the factories, plus an entropy seed.
fn rogue_rng() {
    let _seeded = StdRng::seed_from_u64(42);
    let _entropy = thread_rng();
}

/// D4 — float arithmetic in an accounting path.
fn float_accounting(delivered: u64) -> f64 {
    delivered as f64 * 0.5
}

/// D5 — print outside a CLI main.
fn noisy() {
    println!("stray stdout write");
    eprintln!("stray stderr write");
}

/// D6 — unsafe code.
fn unchecked(xs: &[u64]) -> u64 {
    unsafe { *xs.get_unchecked(0) }
}

/// P1 — a malformed pragma: reason missing, so it is reported, not honoured.
// fdn-lint: allow(D1)
fn still_flagged() -> Instant {
    Instant::now()
}

/// Suppression control: a *valid* pragma keeps this finding out of the
/// report, proving suppression works inside the same fixture.
fn sanctioned() {
    // fdn-lint: allow(D6) -- fixture: demonstrates a justified suppression
    unsafe { std::hint::unreachable_unchecked() }
}

/// F1 — wall-clock taint flowing *through a helper* into a report sink:
/// neither function is individually more than a D1 site, but the call edge
/// from the render function makes the pair a flow violation.
fn helper_now_pulses() -> u64 {
    Instant::now().elapsed().as_millis() as u64
}

/// The F1 sink (matched by the `render*` name heuristic).
fn render_cells() -> u64 {
    helper_now_pulses()
}

/// F2 — map-iteration order leaking through a helper into a render
/// function with no sort on the path.
fn unstable_rows(stats: &HashMap<String, u64>) -> Vec<String> {
    stats.keys().cloned().collect()
}

/// The F2 sink.
fn render_rows(stats: &HashMap<String, u64>) -> Vec<String> {
    unstable_rows(stats)
}

/// F3 — environment dependence feeding a report sink.
fn shard_width_from_env() -> usize {
    std::env::var("FDN_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// The F3 sink.
fn render_shard_plan() -> usize {
    shard_width_from_env()
}

/// Flow control case: the same map-iteration shape as `unstable_rows`, but
/// the path to the sink sorts — the sorting boundary must keep this pair
/// out of the report.
fn stable_rows(stats: &HashMap<String, u64>) -> Vec<String> {
    let mut rows: Vec<String> = stats.keys().cloned().collect();
    rows.sort();
    rows
}

/// Not a finding: `stable_rows` sorts, so no F2 fires here.
fn render_sorted_rows(stats: &HashMap<String, u64>) -> Vec<String> {
    stable_rows(stats)
}

/// Non-findings: the scanner must NOT flag any of these.
fn decoys() {
    // Instant::now() in a line comment is invisible.
    /* HashMap in /* a nested */ block comment is invisible. */
    let _s = "unsafe { } in a string is invisible";
    let _r = r#"SystemTime inside a raw string is invisible"#;
    let _smuggled = "fdn-lint: allow(D5) -- a pragma in a string suppresses nothing";
    println!("flagged: the string pragma above must not cover this line");
}
