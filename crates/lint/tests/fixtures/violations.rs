//! Seeded-violation corpus for the CI lint gate.
//!
//! This file is NOT compiled (it sits below `tests/fixtures/`, which cargo
//! ignores and the default `fdn-lint` walk excludes). It exists to prove,
//! on every CI run, that the gate still *fails* when it should: linted
//! explicitly with `--apply-all-rules`, it must produce at least one
//! finding for every rule D1–D6 plus a P1, and exit 2.

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

/// D1 — wall clock reads.
fn wall_clock() -> u128 {
    let started = Instant::now();
    let _epoch = SystemTime::now();
    started.elapsed().as_millis()
}

/// D2 — unordered containers (either identifier fires).
fn unordered_report() -> (HashMap<String, u64>, HashSet<String>) {
    (HashMap::new(), HashSet::new())
}

/// D3 — RNG construction outside the factories, plus an entropy seed.
fn rogue_rng() {
    let _seeded = StdRng::seed_from_u64(42);
    let _entropy = thread_rng();
}

/// D4 — float arithmetic in an accounting path.
fn float_accounting(delivered: u64) -> f64 {
    delivered as f64 * 0.5
}

/// D5 — print outside a CLI main.
fn noisy() {
    println!("stray stdout write");
    eprintln!("stray stderr write");
}

/// D6 — unsafe code.
fn unchecked(xs: &[u64]) -> u64 {
    unsafe { *xs.get_unchecked(0) }
}

/// P1 — a malformed pragma: reason missing, so it is reported, not honoured.
// fdn-lint: allow(D1)
fn still_flagged() -> Instant {
    Instant::now()
}

/// Suppression control: a *valid* pragma keeps this finding out of the
/// report, proving suppression works inside the same fixture.
fn sanctioned() {
    // fdn-lint: allow(D6) -- fixture: demonstrates a justified suppression
    unsafe { std::hint::unreachable_unchecked() }
}

/// Non-findings: the scanner must NOT flag any of these.
fn decoys() {
    // Instant::now() in a line comment is invisible.
    /* HashMap in /* a nested */ block comment is invisible. */
    let _s = "unsafe { } in a string is invisible";
    let _r = r#"SystemTime inside a raw string is invisible"#;
    let _smuggled = "fdn-lint: allow(D5) -- a pragma in a string suppresses nothing";
    println!("flagged: the string pragma above must not cover this line");
}
