//! Scanner and pragma edge cases, exercised through the public library API
//! exactly as the CLI uses it: `check_file` with the permissive
//! `apply_all_rules` policy, so any token leak becomes a visible finding.

use fdn_lint::{check_file, Baseline, Finding, LintReport, PathPolicy, RuleId};

fn lint(source: &str) -> Vec<Finding> {
    check_file(
        "crates/x/src/lib.rs",
        source,
        &PathPolicy {
            apply_all_rules: true,
        },
    )
}

fn rules(findings: &[Finding]) -> Vec<RuleId> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn raw_strings_hide_violations_at_every_hash_depth() {
    for src in [
        r###"let s = r"Instant::now() unsafe";"###,
        r###"let s = r#"Instant::now() "quoted" unsafe"#;"###,
        r###"let s = r##"Instant::now() "# unsafe"##;"###,
        r###"let s = br#"unsafe bytes"#;"###,
    ] {
        assert!(lint(src).is_empty(), "leak in {src}");
    }
    // The raw string terminates where its guard count says: code after the
    // close is live again.
    let src = r###"let s = r#"quiet"#; unsafe { }"###;
    assert_eq!(rules(&lint(src)), vec![RuleId::D6]);
}

#[test]
fn nested_block_comments_track_depth() {
    let src = "/* outer /* inner unsafe */ still comment Instant */ let x = 1;";
    assert!(lint(src).is_empty());
    // An unbalanced opener swallows the rest of the file (forgiving EOF).
    assert!(lint("/* /* unsafe */ Instant::now()").is_empty());
    // …but a balanced pair does not swallow trailing code.
    let src = "/* /* a */ b */ unsafe { }";
    assert_eq!(rules(&lint(src)), vec![RuleId::D6]);
}

#[test]
fn char_literals_and_lifetimes_do_not_desync_the_scanner() {
    // A quote-heavy gauntlet: if any of these desynchronized the scanner,
    // the trailing `unsafe` would vanish or a string's content would leak.
    let src = "let a = '\"'; let b = '\\''; let c: &'static str = \"Instant\"; unsafe { }";
    assert_eq!(rules(&lint(src)), vec![RuleId::D6]);
}

#[test]
fn pragma_inside_string_must_not_suppress() {
    let src = "let s = \"fdn-lint: allow(D6) -- smuggled\";\nunsafe { }";
    assert_eq!(rules(&lint(src)), vec![RuleId::D6]);
    // Same text as a *comment* does suppress.
    let src = "// fdn-lint: allow(D6) -- genuine\nunsafe { }";
    assert!(lint(src).is_empty());
}

#[test]
fn multi_rule_pragmas_cover_exactly_their_rules() {
    let src =
        "// fdn-lint: allow(D1, D5) -- both on one line\nlet t = Instant::now(); println!(\"x\");";
    assert!(lint(src).is_empty());
    // The pragma names D1 only: D5 still fires.
    let src = "// fdn-lint: allow(D1) -- timing only\nlet t = Instant::now(); println!(\"x\");";
    assert_eq!(rules(&lint(src)), vec![RuleId::D5]);
    // Duplicate rule ids in one pragma are tolerated.
    let src = "unsafe { } // fdn-lint: allow(D6, D6) -- dup";
    assert!(lint(src).is_empty());
}

#[test]
fn doc_comments_mentioning_the_marker_are_not_directives() {
    // Prose *about* pragmas (like this crate's own docs) must neither
    // suppress nor be reported as malformed.
    let src = "//! The `// fdn-lint: allow(<rule>) -- <reason>` form.\nfn ok() {}";
    assert!(lint(src).is_empty());
}

#[test]
fn findings_order_is_stable_for_identical_content() {
    let src = "unsafe { }\nlet t = Instant::now();\nunsafe { }";
    let a = LintReport::new(1, lint(src), &Baseline::empty()).to_json_string();
    let b = LintReport::new(1, lint(src), &Baseline::empty()).to_json_string();
    assert_eq!(a, b);
    // Sorted by line within the file.
    assert!(a.find("\"line\": 1").unwrap() < a.find("\"line\": 2").unwrap());
}

#[test]
fn baseline_survives_json_round_trip_with_findings() {
    let findings = lint("unsafe { }\nlet t = Instant::now();");
    let baseline = Baseline::from_findings(&findings);
    let reparsed = Baseline::parse(&baseline.to_json_string()).unwrap();
    assert_eq!(baseline, reparsed);
    let report = LintReport::new(1, findings, &reparsed);
    assert!(report.is_clean());
    assert_eq!(report.baselined_count(), 2);
}
