//! Scanner and pragma edge cases, exercised through the public library API
//! exactly as the CLI uses it: `check_file` with the permissive
//! `apply_all_rules` policy, so any token leak becomes a visible finding.

use fdn_lint::{build_graph, check_file, Baseline, Finding, LintReport, PathPolicy, RuleId};

fn lint(source: &str) -> Vec<Finding> {
    check_file(
        "crates/x/src/lib.rs",
        source,
        &PathPolicy {
            apply_all_rules: true,
        },
    )
}

fn rules(findings: &[Finding]) -> Vec<RuleId> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn raw_strings_hide_violations_at_every_hash_depth() {
    for src in [
        r###"let s = r"Instant::now() unsafe";"###,
        r###"let s = r#"Instant::now() "quoted" unsafe"#;"###,
        r###"let s = r##"Instant::now() "# unsafe"##;"###,
        r###"let s = br#"unsafe bytes"#;"###,
    ] {
        assert!(lint(src).is_empty(), "leak in {src}");
    }
    // The raw string terminates where its guard count says: code after the
    // close is live again.
    let src = r###"let s = r#"quiet"#; unsafe { }"###;
    assert_eq!(rules(&lint(src)), vec![RuleId::D6]);
}

#[test]
fn nested_block_comments_track_depth() {
    let src = "/* outer /* inner unsafe */ still comment Instant */ let x = 1;";
    assert!(lint(src).is_empty());
    // An unbalanced opener swallows the rest of the file (forgiving EOF).
    assert!(lint("/* /* unsafe */ Instant::now()").is_empty());
    // …but a balanced pair does not swallow trailing code.
    let src = "/* /* a */ b */ unsafe { }";
    assert_eq!(rules(&lint(src)), vec![RuleId::D6]);
}

#[test]
fn char_literals_and_lifetimes_do_not_desync_the_scanner() {
    // A quote-heavy gauntlet: if any of these desynchronized the scanner,
    // the trailing `unsafe` would vanish or a string's content would leak.
    let src = "let a = '\"'; let b = '\\''; let c: &'static str = \"Instant\"; unsafe { }";
    assert_eq!(rules(&lint(src)), vec![RuleId::D6]);
}

#[test]
fn pragma_inside_string_must_not_suppress() {
    let src = "let s = \"fdn-lint: allow(D6) -- smuggled\";\nunsafe { }";
    assert_eq!(rules(&lint(src)), vec![RuleId::D6]);
    // Same text as a *comment* does suppress.
    let src = "// fdn-lint: allow(D6) -- genuine\nunsafe { }";
    assert!(lint(src).is_empty());
}

#[test]
fn multi_rule_pragmas_cover_exactly_their_rules() {
    let src =
        "// fdn-lint: allow(D1, D5) -- both on one line\nlet t = Instant::now(); println!(\"x\");";
    assert!(lint(src).is_empty());
    // The pragma names D1 only: D5 still fires.
    let src = "// fdn-lint: allow(D1) -- timing only\nlet t = Instant::now(); println!(\"x\");";
    assert_eq!(rules(&lint(src)), vec![RuleId::D5]);
    // Duplicate rule ids in one pragma are tolerated.
    let src = "unsafe { } // fdn-lint: allow(D6, D6) -- dup";
    assert!(lint(src).is_empty());
}

#[test]
fn doc_comments_mentioning_the_marker_are_not_directives() {
    // Prose *about* pragmas (like this crate's own docs) must neither
    // suppress nor be reported as malformed.
    let src = "//! The `// fdn-lint: allow(<rule>) -- <reason>` form.\nfn ok() {}";
    assert!(lint(src).is_empty());
}

#[test]
fn crlf_sources_keep_line_numbers_and_pragma_reasons() {
    let unix = "fn f() {\n    let t = Instant::now();\n}\n";
    let dos = unix.replace('\n', "\r\n");
    let a = lint(unix);
    let b = lint(&dos);
    assert_eq!(rules(&a), vec![RuleId::D1]);
    assert_eq!(
        (a[0].line, a[0].rule),
        (b[0].line, b[0].rule),
        "CRLF must not shift finding lines"
    );

    // A trailing '\r' left on the comment text would corrupt the pragma's
    // `-- reason` tail (or turn the pragma into a P1).
    let src = "fn f() {\r\n\
               // fdn-lint: allow(D1) -- stderr-only timing sidecar\r\n\
               let t = Instant::now();\r\n\
               }\r\n";
    assert!(
        lint(src).is_empty(),
        "CRLF pragma must suppress without firing P1: {:?}",
        lint(src)
    );
}

#[test]
fn shebang_line_is_inert_and_does_not_shift_lines() {
    let src = "#!/usr/bin/env run-cargo-script\n\
               fn f() { let t = Instant::now(); }\n";
    let findings = lint(src);
    assert_eq!(rules(&findings), vec![RuleId::D1]);
    assert_eq!(findings[0].line, 2, "shebang occupies line 1");
}

#[test]
fn raw_strings_inside_macro_invocations_stay_opaque() {
    // The raw string rides inside a macro's token tree — its contents
    // (including the unbalanced quote and would-be violations) are data.
    let src = "fn fingerprint_row() {\n\
               let q = write!(w, r#\"Instant::now() \" unsafe {{\"#);\n\
               let t = SystemTime::now();\n\
               }\n";
    let findings = lint(src);
    assert_eq!(rules(&findings), vec![RuleId::D1], "{findings:?}");
    assert_eq!(findings[0].line, 3, "only the real SystemTime counts");
}

#[test]
fn impl_with_multi_line_where_clause_keeps_method_ownership() {
    let src = "struct Frontier<T> { items: Vec<T> }\n\
               impl<T> Frontier<T>\n\
               where\n\
                   T: Clone + Ord,\n\
                   T: Default,\n\
               {\n\
                   fn render_frontier(&self) -> u64 {\n\
                       helper()\n\
                   }\n\
               }\n\
               fn helper() -> u64 { 0 }\n";
    let g = build_graph(&[("crates/x/src/lib.rs".to_string(), src.to_string())]);
    let caller = g
        .fns
        .iter()
        .position(|f| f.name == "render_frontier")
        .expect("method inside where-clause impl is extracted");
    assert_eq!(
        g.fns[caller].owner.as_deref(),
        Some("Frontier"),
        "multi-line where clause must not detach the method from its impl"
    );
    // The call edge out of the method still resolves to the free helper.
    let helper = g.fns.iter().position(|f| f.name == "helper").unwrap();
    assert!(
        g.internal_callees_of(caller).contains(&helper),
        "missing render_frontier -> helper edge"
    );
}

#[test]
fn findings_order_is_stable_for_identical_content() {
    let src = "unsafe { }\nlet t = Instant::now();\nunsafe { }";
    let a = LintReport::new(1, lint(src), &Baseline::empty()).to_json_string();
    let b = LintReport::new(1, lint(src), &Baseline::empty()).to_json_string();
    assert_eq!(a, b);
    // Sorted by line within the file.
    assert!(a.find("\"line\": 1").unwrap() < a.find("\"line\": 2").unwrap());
}

#[test]
fn baseline_survives_json_round_trip_with_findings() {
    let findings = lint("unsafe { }\nlet t = Instant::now();");
    let baseline = Baseline::from_findings(&findings);
    let reparsed = Baseline::parse(&baseline.to_json_string()).unwrap();
    assert_eq!(baseline, reparsed);
    let report = LintReport::new(1, findings, &reparsed);
    assert!(report.is_clean());
    assert_eq!(report.baselined_count(), 2);
}
