//! The determinism rules and their path policies.
//!
//! Every rule guards one way nondeterminism (or unaccountable state) has
//! historically leaked — or could leak — into the byte-compared artifacts
//! this repo's CI gates (`campaign`/`frontier`/`trace` reports, checked with
//! `cmp` across reruns, thread counts and shard splits):
//!
//! | rule | guards against |
//! |------|----------------|
//! | D1   | wall-clock reads (`Instant`, `SystemTime`) outside the sanctioned timing modules |
//! | D2   | unordered `HashMap`/`HashSet` state in report-producing modules |
//! | D3   | RNG construction outside the seeded factories (and entropy-seeded RNGs anywhere) |
//! | D4   | float arithmetic in delivery/pulse accounting paths |
//! | D5   | `println!`/`eprintln!` output outside CLI mains and bench binaries |
//! | D6   | `unsafe` blocks anywhere in the workspace |
//! | F1   | clock/entropy/float taint flowing through the call graph into a report sink |
//! | F2   | map-iteration-order taint reaching a sink without a sorting boundary |
//! | F3   | environment-dependence taint (env vars, thread counts) reaching a sink |
//! | P1   | malformed `fdn-lint:` pragmas (never honoured, always reported) |
//!
//! D1–D6 and P1 are lexical (see [`crate::scanner`]); F1–F3 are *flow*
//! rules computed over the workspace call graph (see [`crate::flow`]) and
//! only fire on whole-workspace scans. Where a lexical check cannot
//! prove safety (a `HashMap` that is only ever *indexed*, an `f64`
//! probability that feeds a seeded draw), the escape hatch is an inline
//! pragma whose mandatory `-- reason` documents the argument. Path policies
//! below are workspace-relative, forward-slash paths.

use crate::pragma;
use crate::scanner::{mask_cfg_test, scan, TokenKind};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Wall-clock APIs outside allowlisted timing modules.
    D1,
    /// `HashMap`/`HashSet` in report-producing modules.
    D2,
    /// RNG construction outside the seeded factories.
    D3,
    /// Float arithmetic in accounting paths.
    D4,
    /// `println!`-family output outside CLI/bench binaries.
    D5,
    /// `unsafe` code.
    D6,
    /// Clock/entropy/float taint reaching a report sink through calls.
    F1,
    /// Map-iteration-order taint reaching a sink without sorting.
    F2,
    /// Environment-dependence taint reaching a sink.
    F3,
    /// Malformed suppression pragma.
    P1,
}

/// All rules, in report order.
pub const ALL_RULES: [RuleId; 10] = [
    RuleId::D1,
    RuleId::D2,
    RuleId::D3,
    RuleId::D4,
    RuleId::D5,
    RuleId::D6,
    RuleId::F1,
    RuleId::F2,
    RuleId::F3,
    RuleId::P1,
];

impl RuleId {
    /// Parses a rule id (`"D1"` … `"D6"`, `"P1"`).
    pub fn parse(s: &str) -> Option<RuleId> {
        ALL_RULES.into_iter().find(|r| r.name() == s)
    }

    /// The canonical id string.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
            RuleId::F1 => "F1",
            RuleId::F2 => "F2",
            RuleId::F3 => "F3",
            RuleId::P1 => "P1",
        }
    }

    /// One-line rule title for report headers.
    pub fn title(self) -> &'static str {
        match self {
            RuleId::D1 => "wall clock outside timing modules",
            RuleId::D2 => "unordered map/set in report-producing module",
            RuleId::D3 => "RNG construction outside seeded factories",
            RuleId::D4 => "float arithmetic in accounting path",
            RuleId::D5 => "print outside CLI/bench binaries",
            RuleId::D6 => "unsafe code",
            RuleId::F1 => "clock/entropy/float taint reaches a report sink",
            RuleId::F2 => "map-iteration-order taint reaches a sink unsorted",
            RuleId::F3 => "environment dependence reaches a sink",
            RuleId::P1 => "malformed fdn-lint pragma",
        }
    }

    /// Why the rule exists — the determinism rationale rendered into the
    /// markdown report and the README rule table.
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "Wall time is nondeterministic and must never reach byte-gated JSON/CSV \
                 artifacts; the --timings sidecar and markdown headers are the sanctioned paths."
            }
            RuleId::D2 => {
                "HashMap/HashSet iteration order varies per process; anything rendered into a \
                 report must iterate sorted containers (or prove it never iterates)."
            }
            RuleId::D3 => {
                "Every random stream must derive from an explicit scenario seed via the \
                 NoiseSpec/SchedulerSpec/generator factories, or runs stop being replayable."
            }
            RuleId::D4 => {
                "Delivery/pulse accounting is exact integer arithmetic (the frontier axis is \
                 fixed-point ppm for this reason); floats belong in MetricSummary/rendering only."
            }
            RuleId::D5 => {
                "Stray stdout/stderr writes corrupt piped artifacts and hide diagnostics; \
                 human-facing output belongs to CLI mains and bench binaries."
            }
            RuleId::D6 => "The workspace forbids unsafe code (also enforced at compile time).",
            RuleId::F1 => {
                "A wall-clock read, entropy RNG or float computed in a helper still poisons the \
                 report it flows into; taint is tracked along the call graph and only a \
                 sanctioned boundary (timing::Stopwatch, the seeded factories, Json::num_u64) \
                 clears it."
            }
            RuleId::F2 => {
                "HashMap/HashSet iteration order leaking through helpers into rendered bytes is \
                 the classic nondeterminism bug; a path is clean only if it passes an explicit \
                 sort or an ordered (BTree) collection before the sink."
            }
            RuleId::F3 => {
                "Environment variables and detected thread counts vary per machine; any value \
                 derived from them that reaches a byte-gated artifact breaks the cross-machine \
                 cmp contract."
            }
            RuleId::P1 => {
                "A suppression without a parseable rule list and written reason is a silent \
                 hole in the contract; it is reported instead of honoured."
            }
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative, forward-slash file path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable description of the specific violation.
    pub message: String,
    /// For flow rules (F1–F3): the source→sink call path, each entry
    /// `module::Owner::fn (file:line)`. Empty for lexical findings. Not part
    /// of the baseline identity — that stays (file, rule, line).
    pub path: Vec<String>,
}

/// Where each rule applies and where it is pre-sanctioned.
///
/// The default policy encodes this repository's layout; `apply_all_rules`
/// (the CLI's `--apply-all-rules`) ignores every path carve-out, which is
/// how the seeded-violation fixture under `tests/fixtures/` is exercised in
/// CI despite living on a test path.
#[derive(Debug, Clone, Default)]
pub struct PathPolicy {
    /// Ignore all allowlists and scopes: every rule applies to every file.
    pub apply_all_rules: bool,
}

/// Path prefixes whose files may read the wall clock (rule D1): the single
/// lab timing helper, the criterion shim (a benchmark harness *is* a timer)
/// and the bench crate.
pub(crate) const D1_ALLOWED: [&str; 3] = [
    "crates/lab/src/timing.rs",
    "crates/shims/criterion/",
    "crates/bench/",
];

/// Report-producing modules (rule D2 scope): everything whose output is
/// byte-compared in CI. `HashMap`/`HashSet` here require a pragma arguing
/// why unordered state cannot leak (lookup-only, or sorted before render).
pub(crate) const D2_SCOPE: [&str; 10] = [
    "crates/lab/src/report.rs",
    "crates/lab/src/json.rs",
    "crates/lab/src/diff.rs",
    "crates/lab/src/trace.rs",
    "crates/lab/src/frontier.rs",
    "crates/lab/src/store.rs",
    "crates/lab/src/fleet.rs",
    "crates/netsim/src/observer.rs",
    "crates/netsim/src/stats.rs",
    "crates/netsim/src/transcript.rs",
];

/// The seeded RNG factories (rule D3): the only places allowed to construct
/// generators, each taking an explicit seed from the scenario spec.
pub(crate) const D3_ALLOWED: [&str; 4] = [
    "crates/netsim/src/noise.rs",
    "crates/netsim/src/scheduler.rs",
    "crates/graph/src/generators.rs",
    "crates/shims/rand/",
];

/// RNG constructors that are legitimate *inside* the factories.
const D3_FACTORY_IDENTS: [&str; 4] = ["StdRng", "SeedableRng", "seed_from_u64", "from_seed"];

/// Entropy-seeded constructors — nondeterministic by definition, banned
/// everywhere including the factories.
const D3_BANNED_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];

/// Delivery/pulse accounting paths (rule D4 scope): the simulator event
/// loop, link queues, counters, the construction engines, and the
/// checkpoint store + fleet driver (whose on-disk entries and manifests
/// must be byte-canonical). Floats here either round (breaking exact
/// accounting invariants) or accumulate in platform-dependent order; the
/// fixed-point ppm omission axis exists precisely to keep this set
/// float-free.
const D4_SCOPE: [&str; 9] = [
    "crates/netsim/src/sim.rs",
    "crates/netsim/src/links",
    "crates/netsim/src/envelope.rs",
    "crates/netsim/src/stats.rs",
    "crates/netsim/src/transcript.rs",
    "crates/netsim/src/noise.rs",
    "crates/core/src/",
    "crates/lab/src/store.rs",
    "crates/lab/src/fleet.rs",
];

/// The `println!`-family macros rule D5 flags.
const D5_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

/// Paths allowed to print (rule D5) besides mains/bins: the criterion shim
/// *is* the bench harness's result printer.
const D5_ALLOWED: [&str; 1] = ["crates/shims/criterion/"];

impl PathPolicy {
    /// True for paths under a test/bench/example tree — exempt from D1, D3
    /// and D5 (their output and timing never feed byte-gated artifacts).
    pub(crate) fn is_test_path(&self, path: &str) -> bool {
        !self.apply_all_rules
            && (path.starts_with("tests/")
                || path.starts_with("examples/")
                || path.contains("/tests/")
                || path.contains("/benches/")
                || path.contains("/examples/"))
    }

    pub(crate) fn in_any(path: &str, prefixes: &[&str]) -> bool {
        prefixes.iter().any(|p| path == *p || path.starts_with(p))
    }

    /// D1 applies unless the file is a sanctioned timing module or test.
    pub(crate) fn d1_applies(&self, path: &str) -> bool {
        self.apply_all_rules || (!self.is_test_path(path) && !Self::in_any(path, &D1_ALLOWED))
    }

    /// D2 applies only inside the report-producing scope.
    fn d2_applies(&self, path: &str) -> bool {
        self.apply_all_rules || Self::in_any(path, &D2_SCOPE)
    }

    /// D3 factory constructors are flagged outside the factory modules.
    fn d3_factory_applies(&self, path: &str) -> bool {
        self.apply_all_rules || (!self.is_test_path(path) && !Self::in_any(path, &D3_ALLOWED))
    }

    /// D3 entropy constructors are flagged everywhere outside tests.
    pub(crate) fn d3_banned_applies(&self, path: &str) -> bool {
        self.apply_all_rules || !self.is_test_path(path)
    }

    /// D4 applies only inside the accounting scope.
    pub(crate) fn d4_applies(&self, path: &str) -> bool {
        self.apply_all_rules || Self::in_any(path, &D4_SCOPE)
    }

    /// D5 applies outside binaries, tests, benches and examples.
    fn d5_applies(&self, path: &str) -> bool {
        self.apply_all_rules
            || (!self.is_test_path(path)
                && !path.ends_with("/main.rs")
                && path != "main.rs"
                && !path.contains("/bin/")
                && !Self::in_any(path, &D5_ALLOWED))
    }
}

/// Lints one file's source text. `path` must be workspace-relative with
/// forward slashes — it drives the path policy and is recorded verbatim in
/// findings (keeping reports machine-independent and byte-deterministic).
pub fn check_file(path: &str, source: &str, policy: &PathPolicy) -> Vec<Finding> {
    let scanned = scan(source);
    let pragmas = pragma::collect(&scanned);
    let tokens = mask_cfg_test(&scanned.tokens);
    let mut findings = Vec::new();
    let mut push = |rule: RuleId, line: u32, message: String| {
        if !pragmas.suppresses(rule, line) {
            findings.push(Finding {
                file: path.to_string(),
                line,
                rule,
                message,
                path: Vec::new(),
            });
        }
    };

    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident {
            let next_is = |c: char| tokens.get(i + 1).is_some_and(|n| n.is_punct(c));

            // D1 — wall clock.
            if (t.text == "Instant" || t.text == "SystemTime" || t.text == "UNIX_EPOCH")
                && policy.d1_applies(path)
            {
                push(
                    RuleId::D1,
                    t.line,
                    format!("`{}` outside an allowlisted timing module", t.text),
                );
            }

            // D2 — unordered containers in report scope.
            if (t.text == "HashMap" || t.text == "HashSet") && policy.d2_applies(path) {
                push(
                    RuleId::D2,
                    t.line,
                    format!("`{}` in a report-producing module", t.text),
                );
            }

            // D3 — RNG construction.
            if D3_BANNED_IDENTS.contains(&t.text.as_str()) && policy.d3_banned_applies(path) {
                push(
                    RuleId::D3,
                    t.line,
                    format!("entropy-seeded RNG `{}` is never deterministic", t.text),
                );
            } else if D3_FACTORY_IDENTS.contains(&t.text.as_str())
                && policy.d3_factory_applies(path)
            {
                push(
                    RuleId::D3,
                    t.line,
                    format!("RNG constructor `{}` outside the seeded factories", t.text),
                );
            }

            // D4 — float types in accounting scope.
            if (t.text == "f64" || t.text == "f32") && policy.d4_applies(path) {
                push(
                    RuleId::D4,
                    t.line,
                    format!("`{}` in a delivery/pulse accounting path", t.text),
                );
            }

            // D5 — print macros (identifier followed by `!`).
            if D5_MACROS.contains(&t.text.as_str()) && next_is('!') && policy.d5_applies(path) {
                push(
                    RuleId::D5,
                    t.line,
                    format!("`{}!` outside a CLI main or bench binary", t.text),
                );
            }

            // D6 — unsafe, everywhere.
            if t.text == "unsafe" {
                push(RuleId::D6, t.line, "`unsafe` block or item".to_string());
            }
        }

        // D4 — float literals in accounting scope (e.g. `0.5`, `1e3`).
        if t.kind == TokenKind::Number && policy.d4_applies(path) && is_float_literal(&t.text) {
            push(
                RuleId::D4,
                t.line,
                format!(
                    "float literal `{}` in a delivery/pulse accounting path",
                    t.text
                ),
            );
        }
    }

    // P1 — malformed pragmas (never path-gated: a broken suppression is a
    // hole wherever it sits).
    for m in &pragmas.malformed {
        findings.push(Finding {
            file: path.to_string(),
            line: m.line,
            rule: RuleId::P1,
            message: format!("malformed fdn-lint pragma: {}", m.problem),
            path: Vec::new(),
        });
    }

    findings.sort();
    findings
}

/// True for numeric literal text with float shape: a decimal point, an
/// exponent (`e`/`E` followed by an optional sign and a digit — so the `e`
/// of an `0usize` suffix does not count), or an explicit `f32`/`f64`
/// suffix. Hex literals are excluded: `0xE3` is not an exponent.
pub(crate) fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    if text.contains('.') || text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    let chars: Vec<char> = text.chars().collect();
    chars.iter().enumerate().any(|(i, &c)| {
        (c == 'e' || c == 'E')
            && chars
                .get(i + 1)
                .is_some_and(|&n| n.is_ascii_digit() || n == '+' || n == '-')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(src: &str) -> Vec<Finding> {
        check_file(
            "crates/x/src/lib.rs",
            src,
            &PathPolicy {
                apply_all_rules: true,
            },
        )
    }

    fn rules_of(findings: &[Finding]) -> Vec<RuleId> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn each_rule_fires_on_its_pattern() {
        let f = all("let t = Instant::now();");
        assert_eq!(rules_of(&f), vec![RuleId::D1]);
        let f = all("let m: HashMap<u32, u32> = HashMap::new();");
        assert_eq!(rules_of(&f), vec![RuleId::D2, RuleId::D2]);
        let f = all("let rng = StdRng::seed_from_u64(7);");
        assert_eq!(rules_of(&f), vec![RuleId::D3, RuleId::D3]);
        let f = all("let x: f64 = 0.5;");
        assert_eq!(rules_of(&f), vec![RuleId::D4, RuleId::D4]);
        let f = all("println!(\"hi\");");
        assert_eq!(rules_of(&f), vec![RuleId::D5]);
        let f = all("unsafe { core::hint::unreachable_unchecked() }");
        assert_eq!(rules_of(&f), vec![RuleId::D6]);
    }

    #[test]
    fn entropy_rngs_are_flagged_even_in_factories() {
        let f = check_file(
            "crates/netsim/src/noise.rs",
            "let a = StdRng::seed_from_u64(1); let b = thread_rng();",
            &PathPolicy::default(),
        );
        // Factory path: seed_from_u64 fine, thread_rng still flagged.
        assert_eq!(rules_of(&f), vec![RuleId::D3]);
        assert!(f[0].message.contains("thread_rng"));
    }

    #[test]
    fn path_policy_scopes_rules() {
        let policy = PathPolicy::default();
        // D2 only bites in report-producing modules.
        let src = "use std::collections::HashMap;";
        assert!(check_file("crates/core/src/engine.rs", src, &policy).is_empty());
        assert_eq!(
            check_file("crates/lab/src/report.rs", src, &policy).len(),
            1
        );
        // D1 is exempt in the timing helper and under tests/.
        let src = "let t = Instant::now();";
        assert!(check_file("crates/lab/src/timing.rs", src, &policy).is_empty());
        assert!(check_file("crates/lab/tests/campaign.rs", src, &policy).is_empty());
        assert_eq!(
            check_file("crates/lab/src/runner.rs", src, &policy).len(),
            1
        );
        // D5 is exempt in mains, bins and examples.
        let src = "fn main() { println!(\"hi\"); }";
        assert!(check_file("crates/lab/src/main.rs", src, &policy).is_empty());
        assert!(check_file("examples/quickstart.rs", src, &policy).is_empty());
        assert!(check_file("crates/bench/src/bin/report.rs", src, &policy).is_empty());
        // D4 covers the whole links/ directory — the counting backend's
        // run-length counters are accounting state like any other queue.
        let src = "let x: f64 = y;";
        assert_eq!(
            check_file("crates/netsim/src/links/counting.rs", src, &policy).len(),
            1
        );
        assert_eq!(
            check_file("crates/netsim/src/links/mod.rs", src, &policy).len(),
            1
        );
        assert!(check_file("crates/netsim/src/spec.rs", src, &policy).is_empty());
        // The checkpoint store and the fleet driver are in both the D4
        // (float-free accounting) and D2 (ordered containers) scopes: their
        // on-disk entries and manifests are byte-compared artifacts.
        for path in ["crates/lab/src/store.rs", "crates/lab/src/fleet.rs"] {
            assert_eq!(
                check_file(path, "let x: f64 = y;", &policy).len(),
                1,
                "{path}"
            );
            assert_eq!(
                check_file(path, "use std::collections::HashMap;", &policy).len(),
                1,
                "{path}"
            );
        }
    }

    #[test]
    fn pragma_suppresses_and_documents() {
        let f = all("let t = Instant::now(); // fdn-lint: allow(D1) -- measured for the sidecar");
        assert!(f.is_empty());
        // The same code without a reason: finding survives, pragma reported.
        let f = all("let t = Instant::now(); // fdn-lint: allow(D1)");
        assert_eq!(rules_of(&f), vec![RuleId::D1, RuleId::P1]);
    }

    #[test]
    fn pragma_in_string_does_not_suppress() {
        let f = all("let s = \"fdn-lint: allow(D6) -- smuggled\";\nunsafe { }");
        assert_eq!(rules_of(&f), vec![RuleId::D6]);
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let f = all("#[cfg(test)] mod tests { fn t() { let i = Instant::now(); } }");
        assert!(f.is_empty());
    }

    #[test]
    fn float_literal_shapes() {
        assert!(is_float_literal("0.5"));
        assert!(is_float_literal("1e3"));
        assert!(is_float_literal("2f64"));
        assert!(is_float_literal("1e-3"));
        assert!(!is_float_literal("42"));
        assert!(!is_float_literal("0xE3"));
        assert!(!is_float_literal("1_000"));
        assert!(!is_float_literal("0usize"));
        assert!(!is_float_literal("8u32"));
    }
}
