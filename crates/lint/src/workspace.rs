//! Workspace file discovery.
//!
//! Walks a root directory for `.rs` sources in **sorted path order** — the
//! file order is part of the byte-determinism contract of the JSON report.
//!
//! The walk is extension-driven, not directory-list-driven: every `.rs`
//! file under the root is included unless a rule below excludes it, so the
//! root `examples/` and `tests/` trees, per-crate `tests/`, `benches/` and
//! `src/bin/` directories, and the vendored `crates/shims/` all get linted
//! without being enumerated anywhere (the shims are instead made inert by
//! the *path policies*, not by the walk). The only exclusions are:
//!
//! - build output (`target/`) and dot-prefixed directories (VCS metadata,
//!   editor state),
//! - this crate's seeded-violation corpus (any `tests/fixtures/`
//!   directory), whose files are deliberate rule trips and are only ever
//!   linted when passed to the CLI explicitly.
//!
//! `lint_gate.rs` pins the walked set against an independent enumeration of
//! the real tree, so a gap here fails CI rather than silently un-linting a
//! source tree.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into (dot-prefixed directories are
/// skipped unconditionally).
const SKIP_DIRS: [&str; 1] = ["target"];

/// Path suffix of the seeded-violation corpus, excluded from default walks.
const FIXTURE_MARKER: &str = "tests/fixtures";

/// Recursively collects every `.rs` file under `root`, sorted by path.
pub fn discover(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if normalize(&path).ends_with(FIXTURE_MARKER) {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Renders `path` relative to `root` with forward slashes — the canonical
/// path form used in findings, pragma policies and the baseline.
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    normalize(rel)
}

fn normalize(path: &Path) -> String {
    path.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/ws");
        let rel = relative(root, Path::new("/ws/crates/lab/src/report.rs"));
        assert_eq!(rel, "crates/lab/src/report.rs");
    }

    #[test]
    fn discover_skips_fixtures_and_target() {
        let dir = std::env::temp_dir().join(format!("fdn-lint-walk-{}", std::process::id()));
        let fixtures = dir.join("tests/fixtures");
        let target = dir.join("target");
        let src = dir.join("src");
        for d in [&fixtures, &target, &src] {
            std::fs::create_dir_all(d).unwrap();
        }
        std::fs::write(fixtures.join("violations.rs"), "unsafe {}").unwrap();
        std::fs::write(target.join("gen.rs"), "unsafe {}").unwrap();
        std::fs::write(src.join("b.rs"), "fn b() {}").unwrap();
        std::fs::write(src.join("a.rs"), "fn a() {}").unwrap();
        let found = discover(&dir).unwrap();
        let rels: Vec<String> = found.iter().map(|p| relative(&dir, p)).collect();
        assert_eq!(rels, vec!["src/a.rs", "src/b.rs"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
