//! Source→sink taint propagation over the workspace call graph — the flow
//! rules F1–F3.
//!
//! The lexical rules (D1–D6) ask "is this token allowed in this file?"; the
//! flow rules ask the question that actually matters for the byte-identity
//! contract: *can a nondeterministic value reach the bytes CI `cmp`s?* A
//! wall-clock read in a helper crate is harmless until a report function
//! calls that helper — and then it is a bug no path policy catches.
//!
//! The model:
//!
//! - **Sources** seed taint per [`TaintKind`]: wall-clock reads (D1's
//!   alphabet), entropy RNGs (D3), float arithmetic in accounting scope
//!   (D4), iteration over `HashMap`/`HashSet`-typed state, and environment
//!   reads (`env::var`, `available_parallelism`). Seeds respect the same
//!   path policies as their lexical cousins, and a pragma suppressing the
//!   lexical rule (or the flow rule) at the seed line suppresses the seed.
//! - **Taint propagates callee→caller**: if `helper` is tainted and
//!   `render` calls it, `render` is tainted. The symmetric direction —
//!   a tainted function passing a value *into* a sink it calls — is covered
//!   by flagging tainted functions with a direct edge to a sink.
//! - **Boundaries** absorb taint: the sanctioned timing modules clear clock
//!   taint, the seeded factories clear entropy taint, `Json::num_u64`
//!   clears float taint, and a body that sorts (or routes through a BTree
//!   collection) clears iteration-order taint. Test paths and the vendored
//!   shims are inert throughout.
//! - **Sinks** are the report-producing functions: everything in the D2
//!   scope files (derived from the same constant the lexical rule uses, so
//!   extending D2 extends F1–F3 for free) plus a name heuristic
//!   (`render*`, `*fingerprint*`, `to_json*`/`to_csv*`/`to_markdown*`/
//!   `to_text*`) that guards future modules before anyone updates a policy
//!   list.
//!
//! Findings are anchored at the **seed token** (file, line) so their
//! baseline identity matches the lexical rules' `(file, rule, line)` form,
//! and carry the full call path for `fdn-lint why`.

use crate::graph::{FnNode, WorkspaceGraph};
use crate::pragma::Pragmas;
use crate::rules::{Finding, PathPolicy, RuleId, D1_ALLOWED, D2_SCOPE, D3_ALLOWED};
use std::collections::BTreeMap;

/// One class of nondeterminism tracked through the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaintKind {
    /// Wall-clock reads (`Instant`, `SystemTime`, `UNIX_EPOCH`).
    Clock,
    /// Entropy-seeded RNG construction (`thread_rng`, `from_entropy`, `OsRng`).
    Entropy,
    /// Float arithmetic in accounting scope.
    Float,
    /// `HashMap`/`HashSet` iteration order.
    MapIter,
    /// Environment dependence (`env::var`, `available_parallelism`).
    Env,
}

/// All kinds, in report order.
const ALL_KINDS: [TaintKind; 5] = [
    TaintKind::Clock,
    TaintKind::Entropy,
    TaintKind::Float,
    TaintKind::MapIter,
    TaintKind::Env,
];

impl TaintKind {
    /// The flow rule this kind reports as.
    pub fn rule(self) -> RuleId {
        match self {
            TaintKind::Clock | TaintKind::Entropy | TaintKind::Float => RuleId::F1,
            TaintKind::MapIter => RuleId::F2,
            TaintKind::Env => RuleId::F3,
        }
    }

    /// Human label used in messages and graph roles.
    pub fn label(self) -> &'static str {
        match self {
            TaintKind::Clock => "clock",
            TaintKind::Entropy => "entropy",
            TaintKind::Float => "float",
            TaintKind::MapIter => "map-iteration-order",
            TaintKind::Env => "environment",
        }
    }

    /// The lexical rule whose pragma also clears this kind's seeds — a site
    /// already argued safe for D1/D3/D4 must not re-fire as flow taint.
    fn lexical_rule(self) -> Option<RuleId> {
        match self {
            TaintKind::Clock => Some(RuleId::D1),
            TaintKind::Entropy => Some(RuleId::D3),
            TaintKind::Float => Some(RuleId::D4),
            TaintKind::MapIter | TaintKind::Env => None,
        }
    }
}

/// True for files that never participate in flow analysis: the vendored
/// shims (stand-ins for external crates) and — unless `--apply-all-rules` —
/// test/bench/example trees.
fn inert(policy: &PathPolicy, file: &str) -> bool {
    file.starts_with("crates/shims/") || policy.is_test_path(file)
}

/// True when `node` absorbs taint of `kind`: taint neither seeds here nor
/// propagates past it.
fn boundary(node: &FnNode, kind: TaintKind) -> bool {
    match kind {
        TaintKind::Clock => PathPolicy::in_any(&node.file, &D1_ALLOWED),
        TaintKind::Entropy => PathPolicy::in_any(&node.file, &D3_ALLOWED),
        // `Json::num_u64` renders an exact integer through the f64-shaped
        // Json value type — the one sanctioned float→bytes path.
        TaintKind::Float => node.name == "num_u64",
        TaintKind::MapIter => node.facts.sorts,
        TaintKind::Env => false,
    }
}

/// True when `node` is a report sink: its file is in the D2 report scope
/// (the same constant the lexical rule uses) or its name matches the
/// render/fingerprint/serialize heuristic.
fn is_sink(node: &FnNode) -> bool {
    PathPolicy::in_any(&node.file, &D2_SCOPE) || sink_name(&node.name)
}

/// The sink name heuristic, applied everywhere (it guards modules no policy
/// list mentions yet).
fn sink_name(name: &str) -> bool {
    name.starts_with("render")
        || name.contains("fingerprint")
        || name.starts_with("to_json")
        || name.starts_with("to_csv")
        || name.starts_with("to_markdown")
        || name.starts_with("to_text")
}

/// True when seeds of `kind` apply in `file` under `policy` — the same
/// scoping as the corresponding lexical rule where one exists.
fn seed_applies(policy: &PathPolicy, kind: TaintKind, file: &str) -> bool {
    match kind {
        TaintKind::Clock => policy.d1_applies(file),
        TaintKind::Entropy => policy.d3_banned_applies(file),
        TaintKind::Float => policy.d4_applies(file),
        TaintKind::MapIter | TaintKind::Env => !policy.is_test_path(file),
    }
}

/// The seed facts of `kind` on one node, as `(line, token)` pairs.
fn facts_of(node: &FnNode, kind: TaintKind) -> &[(u32, String)] {
    match kind {
        TaintKind::Clock => &node.facts.clock,
        TaintKind::Entropy => &node.facts.entropy,
        TaintKind::Float => &node.facts.floats,
        TaintKind::MapIter => &node.facts.map_iter,
        TaintKind::Env => &node.facts.env,
    }
}

/// Descriptive flow roles per function (`source:clock`, `boundary:map_iter`,
/// `sink`) for the graph export. Pragmas are deliberately not consulted —
/// the export describes the model, not a particular scan's suppressions.
pub fn roles(graph: &WorkspaceGraph, policy: &PathPolicy) -> Vec<Vec<String>> {
    graph
        .fns
        .iter()
        .map(|node| {
            let mut out = Vec::new();
            if inert(policy, &node.file) {
                return out;
            }
            for kind in ALL_KINDS {
                if boundary(node, kind) {
                    out.push(format!("boundary:{}", kind.label()));
                } else if !facts_of(node, kind).is_empty() && seed_applies(policy, kind, &node.file)
                {
                    out.push(format!("source:{}", kind.label()));
                }
            }
            if is_sink(node) {
                out.push("sink".to_string());
            }
            out
        })
        .collect()
}

/// Propagates taint of every kind through `graph` and returns the F1–F3
/// findings, sorted and deduplicated on `(file, line, rule)` (keeping the
/// shortest path per identity). `pragmas` is keyed by workspace-relative
/// file path.
pub fn analyze(
    graph: &WorkspaceGraph,
    pragmas: &BTreeMap<String, Pragmas>,
    policy: &PathPolicy,
) -> Vec<Finding> {
    let mut best: BTreeMap<(String, u32, RuleId), Finding> = BTreeMap::new();

    for kind in ALL_KINDS {
        // Seed selection: the first unsuppressed fact per node.
        let mut seed: Vec<Option<(u32, String)>> = vec![None; graph.fns.len()];
        for (i, node) in graph.fns.iter().enumerate() {
            if inert(policy, &node.file)
                || boundary(node, kind)
                || !seed_applies(policy, kind, &node.file)
            {
                continue;
            }
            let suppressed = |line: u32| {
                pragmas.get(&node.file).is_some_and(|p| {
                    p.suppresses(kind.rule(), line)
                        || kind.lexical_rule().is_some_and(|r| p.suppresses(r, line))
                })
            };
            seed[i] = facts_of(node, kind)
                .iter()
                .find(|(line, _)| !suppressed(*line))
                .cloned();
        }

        // BFS callee→caller with parent tracking. Seeds enter in index
        // order, so ties break deterministically toward the lowest-indexed
        // (first-by-file-and-line) path.
        let mut origin: Vec<Option<(usize, Option<usize>)>> = vec![None; graph.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for (i, s) in seed.iter().enumerate() {
            if s.is_some() {
                origin[i] = Some((i, None));
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &caller in graph.callers_of(i) {
                let node = &graph.fns[caller];
                if origin[caller].is_some() || inert(policy, &node.file) || boundary(node, kind) {
                    continue;
                }
                origin[caller] = Some((origin[i].as_ref().unwrap().0, Some(i)));
                queue.push_back(caller);
            }
        }

        // Report tainted sinks, and tainted functions feeding a sink they
        // call directly (value-into-sink direction).
        for (i, o) in origin.iter().enumerate() {
            let Some((seed_node, _)) = o else { continue };
            let node = &graph.fns[i];
            let mut sink_idx: Option<usize> = None;
            if is_sink(node) && !boundary(node, kind) {
                sink_idx = Some(i);
            } else {
                for callee in graph.internal_callees_of(i) {
                    let s = &graph.fns[callee];
                    if is_sink(s) && !boundary(s, kind) && !inert(policy, &s.file) {
                        sink_idx = Some(callee);
                        break;
                    }
                }
            }
            let Some(sink) = sink_idx else { continue };

            // Reconstruct seed→i via parent pointers, then append the
            // directly-called sink if it is not `i` itself.
            let mut chain = vec![i];
            let mut cur = i;
            while let Some((_, Some(parent))) = &origin[cur] {
                chain.push(*parent);
                cur = *parent;
            }
            chain.reverse();
            if sink != i {
                chain.push(sink);
            }
            let path: Vec<String> = chain
                .iter()
                .map(|&n| {
                    let f = &graph.fns[n];
                    format!("{} ({}:{})", f.qual(), f.file, f.line)
                })
                .collect();

            let seed_fn = &graph.fns[*seed_node];
            let (seed_line, seed_token) = seed[*seed_node].clone().unwrap();
            let finding = Finding {
                file: seed_fn.file.clone(),
                line: seed_line,
                rule: kind.rule(),
                message: format!(
                    "{} taint from `{}` in `{}` reaches report sink `{}` through {} call(s)",
                    kind.label(),
                    seed_token,
                    seed_fn.qual(),
                    graph.fns[sink].qual(),
                    path.len().saturating_sub(1),
                ),
                path,
            };
            let key = (finding.file.clone(), finding.line, finding.rule);
            match best.get(&key) {
                Some(prev) if prev.path.len() <= finding.path.len() => {}
                _ => {
                    best.insert(key, finding);
                }
            }
        }
    }

    let mut findings: Vec<Finding> = best.into_values().collect();
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{items, WorkspaceGraph};
    use crate::pragma;
    use crate::scanner::scan;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        run_with_policy(files, &PathPolicy::default())
    }

    fn run_with_policy(files: &[(&str, &str)], policy: &PathPolicy) -> Vec<Finding> {
        let mut raws = Vec::new();
        let mut pragmas = BTreeMap::new();
        for (path, src) in files {
            let scanned = scan(src);
            pragmas.insert(path.to_string(), pragma::collect(&scanned));
            raws.push(items::extract_file(path, &scanned.tokens));
        }
        analyze(&WorkspaceGraph::build(raws), &pragmas, policy)
    }

    #[test]
    fn clock_taint_flows_through_helper_into_sink() {
        let f = run(&[(
            "crates/x/src/lib.rs",
            "fn helper_now() -> u64 { let t = Instant::now(); 0 }\n\
             fn render_cells() { let x = helper_now(); }",
        )]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::F1);
        assert_eq!((f[0].file.as_str(), f[0].line), ("crates/x/src/lib.rs", 1));
        assert_eq!(f[0].path.len(), 2);
        assert!(f[0].message.contains("render_cells"));
    }

    #[test]
    fn timing_module_is_a_clock_boundary() {
        let f = run(&[
            (
                "crates/lab/src/timing.rs",
                "pub fn stopwatch() -> u64 { let t = Instant::now(); 0 }",
            ),
            (
                "crates/x/src/lib.rs",
                "fn render_cells() { let x = stopwatch(); }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn map_iteration_needs_a_sorting_boundary() {
        let dirty = "fn rows(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().cloned().collect() }\n\
                     fn render_rows(m: &HashMap<u32, u32>) { let r = rows(m); }";
        let f = run(&[("crates/x/src/lib.rs", dirty)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::F2);

        let sorted = "fn rows(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                      let mut v: Vec<u32> = m.keys().cloned().collect(); v.sort(); v }\n\
                      fn render_rows(m: &HashMap<u32, u32>) { let r = rows(m); }";
        assert!(run(&[("crates/x/src/lib.rs", sorted)]).is_empty());
    }

    #[test]
    fn env_read_reaching_a_d2_scope_file_is_f3() {
        let f = run(&[(
            "crates/lab/src/fleet.rs",
            "fn workers() -> usize { std::thread::available_parallelism().map_or(1, |n| n.get()) }",
        )]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::F3);
        assert_eq!(f[0].path.len(), 1);
    }

    #[test]
    fn pragma_at_seed_line_suppresses_flow_finding() {
        let f = run(&[(
            "crates/lab/src/fleet.rs",
            "fn workers() -> usize {\n\
             // fdn-lint: allow(F3) -- worker count never reaches report bytes\n\
             std::thread::available_parallelism().map_or(1, |n| n.get())\n\
             }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d_rule_pragma_also_clears_the_seed() {
        let f = run(&[(
            "crates/x/src/lib.rs",
            "fn helper_now() -> u64 {\n\
             let t = Instant::now(); // fdn-lint: allow(D1) -- stderr sidecar only\n\
             0 }\n\
             fn render_cells() { let x = helper_now(); }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn tainted_fn_calling_a_sink_directly_is_flagged() {
        // Value-into-sink direction: the seed fn is never *called by* the
        // sink, it calls the sink itself.
        let f = run(&[(
            "crates/x/src/lib.rs",
            "fn render_report(x: u64) {}\n\
             fn driver() { let t = Instant::now(); render_report(0); }",
        )]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::F1);
        assert_eq!(f[0].path.len(), 2);
    }

    #[test]
    fn test_paths_are_inert_without_apply_all_rules() {
        let files = [(
            "crates/x/tests/gate.rs",
            "fn helper_now() -> u64 { let t = Instant::now(); 0 }\n\
             fn render_cells() { let x = helper_now(); }",
        )];
        assert!(run(&files).is_empty());
        let policy = PathPolicy {
            apply_all_rules: true,
        };
        assert_eq!(run_with_policy(&files, &policy).len(), 1);
    }

    #[test]
    fn shortest_path_wins_per_identity() {
        let f = run(&[(
            "crates/x/src/lib.rs",
            "fn helper_now() -> u64 { let t = Instant::now(); 0 }\n\
             fn mid() -> u64 { helper_now() }\n\
             fn render_a() { let x = mid(); }\n\
             fn render_direct() { let x = helper_now(); }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        // Both sinks are reachable; the finding keeps the 2-hop path.
        assert_eq!(f[0].path.len(), 2);
    }

    #[test]
    fn roles_describe_sources_boundaries_and_sinks() {
        let mut raws = Vec::new();
        for (path, src) in [
            ("crates/lab/src/report.rs", "pub fn render_all() {}"),
            (
                "crates/lab/src/timing.rs",
                "pub fn now_ms() -> u64 { let t = Instant::now(); 0 }",
            ),
            (
                "crates/x/src/lib.rs",
                "fn noisy() { let r = thread_rng(); }",
            ),
        ] {
            raws.push(items::extract_file(path, &scan(src).tokens));
        }
        let g = WorkspaceGraph::build(raws);
        let r = roles(&g, &PathPolicy::default());
        let of = |name: &str| {
            let i = g.fns.iter().position(|n| n.name == name).unwrap();
            r[i].clone()
        };
        assert!(of("render_all").contains(&"sink".to_string()));
        assert!(of("now_ms").contains(&"boundary:clock".to_string()));
        assert!(of("noisy").contains(&"source:entropy".to_string()));
    }
}
