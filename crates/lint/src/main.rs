//! The `fdn-lint` command line: scan the workspace (or explicit paths) for
//! determinism-contract violations, export the call graph, or explain a
//! flow finding.
//!
//! ```text
//! fdn-lint [PATHS...] [--root DIR] [--format text|json|md|github]
//!          [--baseline FILE | --no-baseline] [--write-baseline]
//!          [--prune-baseline] [--apply-all-rules] [--list-rules]
//! fdn-lint graph [--root DIR] [--format json|dot]
//! fdn-lint why FILE:LINE [--root DIR]
//! ```
//!
//! Exit codes mirror `fdn-lab diff`: 0 when every finding is baselined (or
//! none exist), 2 when unbaselined findings are present, 1 on usage or I/O
//! errors.

use std::path::{Path, PathBuf};

use fdn_lint::{
    build_graph, discover, flow, lint_sources, relative, Baseline, LintReport, PathPolicy,
    ALL_RULES,
};

/// Exit code when unbaselined findings are present.
const EXIT_FINDINGS: i32 = 2;

fn main() {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(clean) => {
            if !clean {
                std::process::exit(EXIT_FINDINGS);
            }
        }
        Err(e) => {
            eprintln!("fdn-lint: {e}");
            eprintln!("run `fdn-lint --help` for usage");
            std::process::exit(1);
        }
    }
}

/// Parsed command line of the default (scan) mode.
struct Options {
    /// Explicit files/directories to scan (workspace walk when empty).
    paths: Vec<PathBuf>,
    /// Workspace root: paths are reported relative to it.
    root: PathBuf,
    /// `text`, `json`, `md` or `github`.
    format: String,
    /// Baseline file (`None` = `<root>/lint-baseline.json` when present).
    baseline: Option<PathBuf>,
    /// Ignore any baseline.
    no_baseline: bool,
    /// Write the scan's findings as the new baseline and exit.
    write_baseline: bool,
    /// Rewrite the baseline dropping entries that no longer fire.
    prune_baseline: bool,
    /// Ignore all path carve-outs (fixture/CI use).
    apply_all_rules: bool,
}

fn usage() -> String {
    let mut out = String::from(
        "fdn-lint — determinism static analysis for the fully-defective workspace\n\
         \n\
         Usage: fdn-lint [PATHS...] [flags]\n\
         \x20      fdn-lint graph [--root DIR] [--format json|dot]\n\
         \x20      fdn-lint why FILE:LINE [--root DIR]\n\
         \n\
         With no PATHS, scans every .rs file under --root (default: the\n\
         current directory), excluding target/, dot-directories and\n\
         tests/fixtures corpora. The flow rules (F1-F3) propagate taint over\n\
         the call graph of exactly the scanned file set.\n\
         \n\
         `graph` exports that call graph (byte-deterministic JSON or DOT);\n\
         `why` re-runs the scan and prints the source->sink path of every\n\
         flow finding anchored at FILE:LINE.\n\
         \n\
         Flags:\n\
        \x20 --root DIR          workspace root for path policies and the\n\
        \x20                     default baseline [default: .]\n\
        \x20 --format FMT        text | json | md | github [default: text]\n\
        \x20 --baseline FILE     baseline file [default: ROOT/lint-baseline.json]\n\
        \x20 --no-baseline       ignore any baseline file\n\
        \x20 --write-baseline    record current findings as the baseline\n\
        \x20 --prune-baseline    rewrite the baseline dropping stale entries\n\
        \x20 --apply-all-rules   ignore path allowlists/scopes (fixture gate)\n\
        \x20 --list-rules        print the rule table and exit\n\
         \n\
         Suppression: `// fdn-lint: allow(D1, D2) -- <reason>` on (or above)\n\
         the offending line; the reason is mandatory.\n\
         Exit codes: 0 clean, 2 unbaselined findings, 1 error.\n\
         \n\
         Rules:\n",
    );
    for rule in ALL_RULES {
        out.push_str(&format!("\x20 {}  {}\n", rule.name(), rule.title()));
    }
    out
}

fn parse(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        paths: Vec::new(),
        root: PathBuf::from("."),
        format: "text".to_string(),
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        prune_baseline: false,
        apply_all_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return Ok(None);
            }
            "--list-rules" => {
                for rule in ALL_RULES {
                    println!("{}  {} — {}", rule.name(), rule.title(), rule.rationale());
                }
                return Ok(None);
            }
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--format" => {
                let f = value("--format")?;
                if !["text", "json", "md", "github"].contains(&f.as_str()) {
                    return Err(format!("unknown format `{f}` (text|json|md|github)"));
                }
                opts.format = f;
            }
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--no-baseline" => opts.no_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--prune-baseline" => opts.prune_baseline = true,
            "--apply-all-rules" => opts.apply_all_rules = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.prune_baseline && (opts.write_baseline || opts.no_baseline) {
        return Err("--prune-baseline conflicts with --write-baseline/--no-baseline".to_string());
    }
    Ok(Some(opts))
}

/// Resolves the scanned file set — explicit paths (files or directories) or
/// the default workspace walk — and reads each file as a
/// `(workspace-relative path, text)` pair. Sorted either way: report bytes
/// must not depend on argument or directory-entry order.
fn collect_sources(root: &Path, paths: &[PathBuf]) -> Result<Vec<(String, String)>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if paths.is_empty() {
        files = discover(root).map_err(|e| format!("walking {root:?}: {e}"))?;
    } else {
        for p in paths {
            if p.is_dir() {
                files.extend(discover(p).map_err(|e| format!("walking {p:?}: {e}"))?);
            } else {
                files.push(p.clone());
            }
        }
        files.sort();
        files.dedup();
    }
    files
        .iter()
        .map(|path| {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
            Ok((relative(root, path), source))
        })
        .collect()
}

/// Runs the requested mode; `Ok(true)` means the gate passed.
fn run(args: &[String]) -> Result<bool, String> {
    match args.first().map(String::as_str) {
        Some("graph") => return run_graph(&args[1..]),
        Some("why") => return run_why(&args[1..]),
        _ => {}
    }

    let Some(opts) = parse(args)? else {
        return Ok(true);
    };
    let sources = collect_sources(&opts.root, &opts.paths)?;
    let policy = PathPolicy {
        apply_all_rules: opts.apply_all_rules,
    };
    let findings = lint_sources(&sources, &policy);

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint-baseline.json"));

    if opts.write_baseline {
        let baseline = Baseline::from_findings(&findings);
        std::fs::write(&baseline_path, baseline.to_json_string())
            .map_err(|e| format!("writing {baseline_path:?}: {e}"))?;
        eprintln!(
            "fdn-lint: wrote {} entr(y/ies) to {}",
            baseline.entries.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let mut baseline = if opts.no_baseline {
        Baseline::empty()
    } else {
        load_baseline(&baseline_path)?
    };

    if opts.prune_baseline {
        let stale = baseline.stale(&findings);
        if !stale.is_empty() {
            baseline.entries.retain(|e| !stale.contains(e));
            std::fs::write(&baseline_path, baseline.to_json_string())
                .map_err(|e| format!("writing {baseline_path:?}: {e}"))?;
        }
        eprintln!(
            "fdn-lint: pruned {} stale entr(y/ies), {} kept in {}",
            stale.len(),
            baseline.entries.len(),
            baseline_path.display()
        );
    }

    let report = LintReport::new(sources.len(), findings, &baseline);
    match opts.format.as_str() {
        "json" => print!("{}", report.to_json_string()),
        "md" => print!("{}", report.to_markdown()),
        "github" => print!("{}", report.to_github()),
        _ => print!("{}", report.to_text()),
    }
    Ok(report.is_clean())
}

/// `fdn-lint graph`: export the workspace call graph.
fn run_graph(args: &[String]) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut format = "json".to_string();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--root" => root = PathBuf::from(value("--root")?),
            "--format" => {
                let f = value("--format")?;
                if !["json", "dot"].contains(&f.as_str()) {
                    return Err(format!("unknown graph format `{f}` (json|dot)"));
                }
                format = f;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => paths.push(PathBuf::from(path)),
        }
    }
    let sources = collect_sources(&root, &paths)?;
    let graph = build_graph(&sources);
    if format == "dot" {
        print!("{}", graph.to_dot());
    } else {
        let roles = flow::roles(&graph, &PathPolicy::default());
        print!("{}", graph.to_json_string(&roles));
    }
    Ok(true)
}

/// `fdn-lint why FILE:LINE`: print the source→sink path of every flow
/// finding anchored at that location.
fn run_why(args: &[String]) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut target: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--root requires a value".to_string())?,
                )
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            loc => target = Some(loc.to_string()),
        }
    }
    let target = target.ok_or_else(|| "why requires a FILE:LINE argument".to_string())?;
    let (file, line) = target
        .rsplit_once(':')
        .ok_or_else(|| format!("`{target}` is not FILE:LINE"))?;
    let line: u32 = line
        .parse()
        .map_err(|_| format!("`{target}` is not FILE:LINE"))?;

    let sources = collect_sources(&root, &[])?;
    let findings = lint_sources(&sources, &PathPolicy::default());
    let mut matched = false;
    for f in findings
        .iter()
        .filter(|f| f.file == file && f.line == line && !f.path.is_empty())
    {
        matched = true;
        println!("{}:{} [{}] {}", f.file, f.line, f.rule.name(), f.message);
        for (i, hop) in f.path.iter().enumerate() {
            println!("  {} {hop}", if i == 0 { "source" } else { "  via " });
        }
    }
    if !matched {
        println!("no flow finding anchored at {file}:{line}");
    }
    Ok(true)
}

/// Loads the baseline, treating a missing file as empty (a fresh checkout
/// with no grandfathered findings needs no baseline file at all).
fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::empty()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}
