//! The `fdn-lint` command line: scan the workspace (or explicit paths) for
//! determinism-contract violations.
//!
//! ```text
//! fdn-lint [PATHS...] [--root DIR] [--format text|json|md]
//!          [--baseline FILE | --no-baseline] [--write-baseline]
//!          [--apply-all-rules] [--list-rules]
//! ```
//!
//! Exit codes mirror `fdn-lab diff`: 0 when every finding is baselined (or
//! none exist), 2 when unbaselined findings are present, 1 on usage or I/O
//! errors.

use std::path::{Path, PathBuf};

use fdn_lint::{
    check_file, discover, relative, Baseline, Finding, LintReport, PathPolicy, ALL_RULES,
};

/// Exit code when unbaselined findings are present.
const EXIT_FINDINGS: i32 = 2;

fn main() {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(clean) => {
            if !clean {
                std::process::exit(EXIT_FINDINGS);
            }
        }
        Err(e) => {
            eprintln!("fdn-lint: {e}");
            eprintln!("run `fdn-lint --help` for usage");
            std::process::exit(1);
        }
    }
}

/// Parsed command line.
struct Options {
    /// Explicit files/directories to scan (workspace walk when empty).
    paths: Vec<PathBuf>,
    /// Workspace root: paths are reported relative to it.
    root: PathBuf,
    /// `text`, `json` or `md`.
    format: String,
    /// Baseline file (`None` = `<root>/lint-baseline.json` when present).
    baseline: Option<PathBuf>,
    /// Ignore any baseline.
    no_baseline: bool,
    /// Write the scan's findings as the new baseline and exit.
    write_baseline: bool,
    /// Ignore all path carve-outs (fixture/CI use).
    apply_all_rules: bool,
}

fn usage() -> String {
    let mut out = String::from(
        "fdn-lint — determinism static analysis for the fully-defective workspace\n\
         \n\
         Usage: fdn-lint [PATHS...] [flags]\n\
         \n\
         With no PATHS, scans every .rs file under --root (default: the\n\
         current directory), excluding target/, dot-directories and\n\
         tests/fixtures corpora.\n\
         \n\
         Flags:\n\
        \x20 --root DIR          workspace root for path policies and the\n\
        \x20                     default baseline [default: .]\n\
        \x20 --format FMT        text | json | md [default: text]\n\
        \x20 --baseline FILE     baseline file [default: ROOT/lint-baseline.json]\n\
        \x20 --no-baseline       ignore any baseline file\n\
        \x20 --write-baseline    record current findings as the baseline\n\
        \x20 --apply-all-rules   ignore path allowlists/scopes (fixture gate)\n\
        \x20 --list-rules        print the rule table and exit\n\
         \n\
         Suppression: `// fdn-lint: allow(D1, D2) -- <reason>` on (or above)\n\
         the offending line; the reason is mandatory.\n\
         Exit codes: 0 clean, 2 unbaselined findings, 1 error.\n\
         \n\
         Rules:\n",
    );
    for rule in ALL_RULES {
        out.push_str(&format!("\x20 {}  {}\n", rule.name(), rule.title()));
    }
    out
}

fn parse(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        paths: Vec::new(),
        root: PathBuf::from("."),
        format: "text".to_string(),
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        apply_all_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return Ok(None);
            }
            "--list-rules" => {
                for rule in ALL_RULES {
                    println!("{}  {} — {}", rule.name(), rule.title(), rule.rationale());
                }
                return Ok(None);
            }
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--format" => {
                let f = value("--format")?;
                if !["text", "json", "md"].contains(&f.as_str()) {
                    return Err(format!("unknown format `{f}` (text|json|md)"));
                }
                opts.format = f;
            }
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--no-baseline" => opts.no_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--apply-all-rules" => opts.apply_all_rules = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    Ok(Some(opts))
}

/// Runs the scan; `Ok(true)` means the gate passed.
fn run(args: &[String]) -> Result<bool, String> {
    let Some(opts) = parse(args)? else {
        return Ok(true);
    };

    // Resolve the file set: explicit paths (files or directories) or the
    // default workspace walk. Sorted either way — report bytes must not
    // depend on argument or directory-entry order.
    let mut files: Vec<PathBuf> = Vec::new();
    if opts.paths.is_empty() {
        files = discover(&opts.root).map_err(|e| format!("walking {:?}: {e}", opts.root))?;
    } else {
        for p in &opts.paths {
            if p.is_dir() {
                files.extend(discover(p).map_err(|e| format!("walking {p:?}: {e}"))?);
            } else {
                files.push(p.clone());
            }
        }
        files.sort();
        files.dedup();
    }

    let policy = PathPolicy {
        apply_all_rules: opts.apply_all_rules,
    };
    let mut findings: Vec<Finding> = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
        let rel = relative(&opts.root, path);
        findings.extend(check_file(&rel, &source, &policy));
    }

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint-baseline.json"));

    if opts.write_baseline {
        let baseline = Baseline::from_findings(&findings);
        std::fs::write(&baseline_path, baseline.to_json_string())
            .map_err(|e| format!("writing {baseline_path:?}: {e}"))?;
        eprintln!(
            "fdn-lint: wrote {} entr(y/ies) to {}",
            baseline.entries.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = if opts.no_baseline {
        Baseline::empty()
    } else {
        load_baseline(&baseline_path)?
    };

    let report = LintReport::new(files.len(), findings, &baseline);
    match opts.format.as_str() {
        "json" => print!("{}", report.to_json_string()),
        "md" => print!("{}", report.to_markdown()),
        _ => print!("{}", report.to_text()),
    }
    Ok(report.is_clean())
}

/// Loads the baseline, treating a missing file as empty (a fresh checkout
/// with no grandfathered findings needs no baseline file at all).
fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::empty()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}
