//! The committed findings baseline (`lint-baseline.json`).
//!
//! The gate contract mirrors `fdn-lab diff`: a finding already recorded in
//! the baseline is *grandfathered* (reported, exit 0); a finding absent from
//! it is *new* (exit 2). Baseline entries that no longer match any finding
//! are *stale* and reported so the file can be re-tightened — the intended
//! trajectory of the baseline is monotonically toward empty, which is how
//! this repository ships it.
//!
//! An entry matches on `(file, rule, line)` exactly. Line churn therefore
//! invalidates entries — deliberately: a grandfathered violation that moves
//! has been touched, and touched code should either fix the violation or
//! justify it with an inline pragma.

use crate::rules::{Finding, RuleId};
use fdn_lab::Json;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Workspace-relative, forward-slash path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// The grandfathered rule.
    pub rule: RuleId,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Grandfathered findings, sorted.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// An empty baseline (the default when no file exists).
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Builds a baseline grandfathering exactly `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: Vec<BaselineEntry> = findings
            .iter()
            .map(|f| BaselineEntry {
                file: f.file.clone(),
                line: f.line,
                rule: f.rule,
            })
            .collect();
        entries.sort();
        entries.dedup();
        Baseline { entries }
    }

    /// True when `finding` is grandfathered.
    pub fn contains(&self, finding: &Finding) -> bool {
        self.entries
            .iter()
            .any(|e| e.file == finding.file && e.line == finding.line && e.rule == finding.rule)
    }

    /// Entries that match none of `findings` — candidates for removal.
    pub fn stale(&self, findings: &[Finding]) -> Vec<BaselineEntry> {
        self.entries
            .iter()
            .filter(|e| {
                !findings
                    .iter()
                    .any(|f| e.file == f.file && e.line == f.line && e.rule == f.rule)
            })
            .cloned()
            .collect()
    }

    /// Renders the baseline as deterministic JSON (sorted entries, stable
    /// field order, trailing newline).
    pub fn to_json_string(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort();
        Json::obj(vec![
            ("tool", Json::Str("fdn-lint".to_string())),
            ("version", Json::Num(1.0)),
            (
                "findings",
                Json::Arr(
                    entries
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("file", Json::Str(e.file.clone())),
                                ("line", Json::Num(e.line as f64)),
                                ("rule", Json::Str(e.rule.name().to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Parses a baseline document.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text)?;
        if doc.get("tool").and_then(Json::as_str) != Some("fdn-lint") {
            return Err("not an fdn-lint baseline (missing `\"tool\": \"fdn-lint\"`)".to_string());
        }
        let findings = doc
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("baseline missing `findings` array")?;
        let mut entries = Vec::with_capacity(findings.len());
        for f in findings {
            let file = f
                .get("file")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing `file`")?
                .to_string();
            let line = f
                .get("line")
                .and_then(Json::as_u64)
                .ok_or("baseline entry missing `line`")? as u32;
            let rule_name = f
                .get("rule")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing `rule`")?;
            let rule = RuleId::parse(rule_name)
                .ok_or_else(|| format!("baseline entry has unknown rule `{rule_name}`"))?;
            entries.push(BaselineEntry { file, line, rule });
        }
        entries.sort();
        Ok(Baseline { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: RuleId) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: String::new(),
            path: Vec::new(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let found = vec![
            finding("b.rs", 2, RuleId::D6),
            finding("a.rs", 9, RuleId::D1),
        ];
        let base = Baseline::from_findings(&found);
        let reparsed = Baseline::parse(&base.to_json_string()).unwrap();
        assert_eq!(base, reparsed);
        assert!(found.iter().all(|f| reparsed.contains(f)));
        assert!(reparsed.stale(&found).is_empty());
        // Sorted regardless of input order.
        assert_eq!(reparsed.entries[0].file, "a.rs");
    }

    #[test]
    fn add_and_remove_move_the_gate() {
        let base = Baseline::from_findings(&[finding("a.rs", 1, RuleId::D5)]);
        // A different line is NOT grandfathered.
        assert!(!base.contains(&finding("a.rs", 2, RuleId::D5)));
        // A fixed finding leaves the entry stale.
        let stale = base.stale(&[]);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "a.rs");
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(Baseline::parse("{\"findings\": []}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
