//! `fdn-lint` — the determinism static-analysis pass.
//!
//! This repository's reproduction of *Distributed Computations in
//! Fully-Defective Networks* rests on a byte-identity contract: campaign,
//! frontier and trace artifacts must be byte-identical across thread
//! counts, shard splits and reruns, because content-oblivious runs are only
//! comparable across schedulers and seeds if nothing nondeterministic leaks
//! into reports. CI enforces that contract *dynamically* with `cmp` gates;
//! this crate enforces it *statically*, at the source level, on every file
//! of every PR.
//!
//! The tool is a zero-dependency (workspace-internal only) lexical scanner:
//! [`scanner`] tokenizes Rust sources with full awareness of comments,
//! strings, raw strings and char-vs-lifetime ambiguity; [`rules`] matches
//! the determinism rules D1–D6 over the code tokens under per-rule path
//! policies; [`pragma`] implements the inline
//! `// fdn-lint: allow(<rule>) -- <reason>` suppression form (reason
//! mandatory); [`baseline`] grandfathers findings recorded in the committed
//! `lint-baseline.json`; [`report`] renders deterministic JSON, markdown
//! and text. Unbaselined findings exit with code 2 — the same gate contract
//! as `fdn-lab diff`.
//!
//! ```no_run
//! use fdn_lint::{check_file, Baseline, LintReport, PathPolicy};
//!
//! let findings = check_file(
//!     "crates/core/src/engine.rs",
//!     "let t = std::time::Instant::now();",
//!     &PathPolicy::default(),
//! );
//! let report = LintReport::new(1, findings, &Baseline::empty());
//! assert!(!report.is_clean());
//! println!("{}", report.to_text());
//! ```

pub mod baseline;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod workspace;

pub use baseline::{Baseline, BaselineEntry};
pub use pragma::{Pragma, Pragmas};
pub use report::{FindingStatus, LintReport};
pub use rules::{check_file, Finding, PathPolicy, RuleId, ALL_RULES};
pub use scanner::{scan, ScannedFile, Token, TokenKind};
pub use workspace::{discover, relative};
