//! `fdn-lint` — the determinism static-analysis pass.
//!
//! This repository's reproduction of *Distributed Computations in
//! Fully-Defective Networks* rests on a byte-identity contract: campaign,
//! frontier and trace artifacts must be byte-identical across thread
//! counts, shard splits and reruns, because content-oblivious runs are only
//! comparable across schedulers and seeds if nothing nondeterministic leaks
//! into reports. CI enforces that contract *dynamically* with `cmp` gates;
//! this crate enforces it *statically*, at the source level, on every file
//! of every PR.
//!
//! The tool is a zero-dependency (workspace-internal only) two-layer
//! analyzer. The lexical layer: [`scanner`] tokenizes Rust sources with full
//! awareness of comments, strings, raw strings and char-vs-lifetime
//! ambiguity; [`rules`] matches the determinism rules D1–D6 over the code
//! tokens under per-rule path policies. The flow layer: [`graph`] extracts
//! the workspace item/call graph from the same token streams
//! (`fdn-lint graph` exports it as JSON or DOT), and [`flow`] propagates
//! nondeterminism taint from sources to report sinks along it, reporting
//! rules F1–F3 with full source→sink paths (`fdn-lint why FILE:LINE`).
//! Shared machinery: [`pragma`] implements the inline
//! `// fdn-lint: allow(<rule>) -- <reason>` suppression form (reason
//! mandatory); [`baseline`] grandfathers findings recorded in the committed
//! `lint-baseline.json`; [`report`] renders deterministic JSON, markdown,
//! text and GitHub annotations. Unbaselined findings exit with code 2 — the
//! same gate contract as `fdn-lab diff`.
//!
//! ```no_run
//! use fdn_lint::{check_file, Baseline, LintReport, PathPolicy};
//!
//! let findings = check_file(
//!     "crates/core/src/engine.rs",
//!     "let t = std::time::Instant::now();",
//!     &PathPolicy::default(),
//! );
//! let report = LintReport::new(1, findings, &Baseline::empty());
//! assert!(!report.is_clean());
//! println!("{}", report.to_text());
//! ```

pub mod baseline;
pub mod flow;
pub mod graph;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod workspace;

pub use baseline::{Baseline, BaselineEntry};
pub use graph::{Callee, FnNode, WorkspaceGraph};
pub use pragma::{Pragma, Pragmas};
pub use report::{FindingStatus, LintReport};
pub use rules::{check_file, Finding, PathPolicy, RuleId, ALL_RULES};
pub use scanner::{scan, ScannedFile, Token, TokenKind};
pub use workspace::{discover, relative};

use std::collections::BTreeMap;

/// Builds the workspace call graph from `(path, source)` pairs. Token
/// streams are test-mod-masked exactly like the lexical pass, so `#[cfg(test)]`
/// modules contribute neither nodes nor edges.
pub fn build_graph(sources: &[(String, String)]) -> WorkspaceGraph {
    let raws = sources
        .iter()
        .map(|(path, text)| {
            let scanned = scanner::scan(text);
            let tokens = scanner::mask_cfg_test(&scanned.tokens);
            graph::items::extract_file(path, &tokens)
        })
        .collect();
    WorkspaceGraph::build(raws)
}

/// Runs the full analysis — lexical rules per file, then flow rules over
/// the whole file set's call graph — and returns the merged, sorted
/// findings. `sources` are `(workspace-relative path, text)` pairs; the
/// flow rules see exactly the files passed, so single-file invocations get
/// single-file graphs (the CI self-scan passes the whole workspace).
pub fn lint_sources(sources: &[(String, String)], policy: &PathPolicy) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut raws = Vec::new();
    let mut pragmas: BTreeMap<String, Pragmas> = BTreeMap::new();
    for (path, text) in sources {
        findings.extend(rules::check_file(path, text, policy));
        let scanned = scanner::scan(text);
        pragmas.insert(path.clone(), pragma::collect(&scanned));
        let tokens = scanner::mask_cfg_test(&scanned.tokens);
        raws.push(graph::items::extract_file(path, &tokens));
    }
    let g = WorkspaceGraph::build(raws);
    findings.extend(flow::analyze(&g, &pragmas, policy));
    findings.sort();
    findings
}
