//! Per-file item extraction: the module path, `use` imports, `fn`/`impl`
//! items with line spans, call sites, and the nondeterminism *facts* the
//! flow layer seeds taint from.
//!
//! This is a lightweight item parser on top of the token stream produced by
//! [`crate::scanner`] — deliberately **not** a full Rust parser. It recovers
//! exactly what a source-to-sink taint pass needs:
//!
//! - every `fn` item (free, `impl` method, trait default method) with its
//!   signature line and body extent;
//! - an over-approximate list of call sites per body: any identifier
//!   immediately followed by `(` that is not a keyword, macro (`name!`), or
//!   the name in a nested `fn` definition — qualified (`Type::name(`) and
//!   method (`.name(`) forms are tagged so resolution can be type-filtered;
//! - `use` imports, flattened through `{…}` groups and `as` renames, kept
//!   only for workspace-internal refinement of bare-call resolution;
//! - per-function facts: wall-clock / entropy-RNG / float tokens (the D1,
//!   D3, D4 alphabets), iteration over `HashMap`/`HashSet`-typed names,
//!   environment reads, and whether the body sorts (the F2 sanitizer).
//!
//! Everything here is conservative in the taint direction: unresolved names
//! stay external leaves, unknown receivers are skipped, and the worst case
//! of a parse miss is a missing edge — reported coverage, never a crash.

use crate::rules::is_float_literal;
use crate::scanner::{Token, TokenKind};
use std::collections::BTreeSet;

/// Identifiers never treated as call targets even when followed by `(`:
/// keywords, control flow, and the built-in tuple-variant constructors.
const NON_CALL_IDENTS: [&str; 23] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "in", "as", "move", "ref", "mut", "where", "impl", "dyn", "Some", "None", "Ok", "Err",
];

/// Wall-clock identifiers (the D1 alphabet).
const CLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];

/// Entropy-seeded RNG constructors (the banned D3 alphabet).
const ENTROPY_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];

/// Float type identifiers (the D4 alphabet; float literals are matched by
/// shape via [`is_float_literal`]).
const FLOAT_IDENTS: [&str; 2] = ["f64", "f32"];

/// `std::env` reader functions — only counted when qualified by `env::`.
const ENV_READ_FNS: [&str; 3] = ["var", "vars", "var_os"];

/// Bare identifiers that read the execution environment.
const ENV_IDENTS: [&str; 1] = ["available_parallelism"];

/// Iteration methods that surface a map/set's nondeterministic order when
/// the receiver is `HashMap`/`HashSet`-typed.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Tokens that sanitize iteration-order taint: an explicit sort, or routing
/// through an ordered BTree collection.
const SORT_METHODS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Ordered collections whose presence marks a function as an ordering
/// boundary for F2.
const ORDERED_COLLECTIONS: [&str; 2] = ["BTreeMap", "BTreeSet"];

/// One `use` import leaf: `use a::b::{c as d}` yields `name = "d"`,
/// `path = "a::b::c"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// The name the import binds in this file (`*` for glob imports).
    pub name: String,
    /// The full `::`-joined path.
    pub path: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawCall {
    /// Called name (the identifier before `(`).
    pub name: String,
    /// Qualifying path segment for `Qual::name(…)` calls.
    pub qual: Option<String>,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
    /// 1-indexed source line of the call.
    pub line: u32,
}

/// Nondeterminism facts of one function body — the flow layer's seed and
/// sanitizer alphabet, recorded policy-free (the path policy is applied at
/// analysis time, not extraction time).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnFacts {
    /// Wall-clock tokens: `(line, identifier)`.
    pub clock: Vec<(u32, String)>,
    /// Entropy-RNG tokens.
    pub entropy: Vec<(u32, String)>,
    /// Float tokens (type names and float-shaped literals).
    pub floats: Vec<(u32, String)>,
    /// Iteration over a `HashMap`/`HashSet`-typed name: `(line, receiver.method)`.
    pub map_iter: Vec<(u32, String)>,
    /// Environment reads (`env::var`, `available_parallelism`).
    pub env: Vec<(u32, String)>,
    /// True when the body sorts or routes through an ordered collection —
    /// the sanctioned F2 ordering boundary.
    pub sorts: bool,
}

impl FnFacts {
    /// True when no fact was recorded at all.
    pub fn is_empty(&self) -> bool {
        self.clock.is_empty()
            && self.entropy.is_empty()
            && self.floats.is_empty()
            && self.map_iter.is_empty()
            && self.env.is_empty()
            && !self.sorts
    }
}

/// One extracted `fn` item.
#[derive(Debug, Clone)]
pub struct RawFn {
    /// Bare function name.
    pub name: String,
    /// Owning `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// In-file module path (`mod` nesting), outermost first.
    pub module: Vec<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// 1-indexed line of the body's closing brace.
    pub end_line: u32,
    /// Call sites in body order.
    pub calls: Vec<RawCall>,
    /// Nondeterminism facts of the body.
    pub facts: FnFacts,
}

/// The extraction result for one file.
#[derive(Debug, Clone)]
pub struct RawFile {
    /// Workspace-relative, forward-slash path.
    pub path: String,
    /// Derived crate-level module path (e.g. `fdn_lab::report`).
    pub module: String,
    /// Flattened `use` imports.
    pub imports: Vec<Import>,
    /// Extracted functions in source order.
    pub fns: Vec<RawFn>,
}

/// Derives the displayed module path from a workspace-relative file path:
/// `crates/lab/src/report.rs` → `fdn_lab::report`, `src/lib.rs` →
/// `fully_defective`, shim crates keep their upstream names, and
/// tests/benches/examples keep a path-shaped pseudo-module so every file has
/// a unique, deterministic module string.
pub fn module_path_of(path: &str) -> String {
    let trimmed = path.strip_suffix(".rs").unwrap_or(path);
    let parts: Vec<&str> = trimmed.split('/').collect();
    // crates/<name>/src/... → crate package name + in-crate modules.
    if parts.len() >= 3 && parts[0] == "crates" && parts[2] == "src" {
        let krate = if parts[1] == "shims" {
            // crates/shims/<upstream>/src/...
            if parts.len() >= 4 {
                return flatten_module(parts[2].to_string(), &parts[4..]);
            }
            parts[1].to_string()
        } else {
            format!("fdn_{}", parts[1].replace('-', "_"))
        };
        return flatten_module(krate, &parts[3..]);
    }
    if parts.len() >= 4 && parts[0] == "crates" && parts[1] == "shims" && parts[3] == "src" {
        let krate = parts[2].replace('-', "_");
        return flatten_module(krate, &parts[4..]);
    }
    if parts.len() == 2 && parts[0] == "src" {
        return flatten_module("fully_defective".to_string(), &parts[1..]);
    }
    // tests/, examples/, benches/ (root or crate-level): path-shaped module.
    trimmed.replace('/', "::")
}

/// Joins a crate name with in-crate module segments, dropping the
/// `lib`/`main`/`mod` terminals.
fn flatten_module(krate: String, rest: &[&str]) -> String {
    let mut out = krate;
    for seg in rest {
        if *seg == "lib" || *seg == "main" || *seg == "mod" {
            continue;
        }
        out.push_str("::");
        out.push_str(seg);
    }
    out
}

/// Names in this file carrying a `HashMap`/`HashSet` type: ascribed
/// (`name: HashMap<…>`, including through `&`/`&mut`) or directly
/// constructed (`name = HashMap::new()`). Struct fields, `let` bindings and
/// parameters all match — the set is file-wide on purpose, so a field
/// declared on one impl and iterated in another still seeds F2.
pub fn collect_hash_typed(tokens: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (j, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over `&` and `mut` to the ascription/assignment marker.
        let mut k = j;
        while k > 0 && (tokens[k - 1].is_punct('&') || tokens[k - 1].is_ident("mut")) {
            k -= 1;
        }
        if k == 0 {
            continue;
        }
        let marker = &tokens[k - 1];
        if (marker.is_punct(':') || marker.is_punct('='))
            && k >= 2
            && tokens[k - 2].kind == TokenKind::Ident
        {
            out.insert(tokens[k - 2].text.clone());
        }
    }
    out
}

/// Extracts the items of one file from its (test-mod-masked) token stream.
pub fn extract_file(path: &str, tokens: &[Token]) -> RawFile {
    let hash_typed = collect_hash_typed(tokens);
    let mut file = RawFile {
        path: path.to_string(),
        module: module_path_of(path),
        imports: Vec::new(),
        fns: Vec::new(),
    };

    /// One entry of the scope stack: the kind, its name, and the brace
    /// depth its body occupies (scopes pop when depth falls below it).
    enum Scope {
        Module(String),
        Owner(String),
    }
    let mut scopes: Vec<(Scope, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];

        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while scopes.last().is_some_and(|(_, d)| *d > depth) {
                scopes.pop();
            }
            i += 1;
            continue;
        }

        // Attributes: `#[…]` and `#![…]` (also covers a leading shebang's
        // `#` + `!` pair when followed by `[`; a plain shebang line's
        // tokens are inert punctuation otherwise).
        if t.is_punct('#') {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|n| n.is_punct('!')) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|n| n.is_punct('[')) {
                i = skip_brackets(tokens, j);
                continue;
            }
            i += 1;
            continue;
        }

        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "use" => {
                    i = parse_use(tokens, i + 1, &mut file.imports);
                    continue;
                }
                "mod" => {
                    // `mod name {` opens a module scope; `mod name;` is an
                    // out-of-line declaration and carries no items here.
                    if let (Some(name), Some(brace)) = (tokens.get(i + 1), tokens.get(i + 2)) {
                        if name.kind == TokenKind::Ident && brace.is_punct('{') {
                            scopes.push((Scope::Module(name.text.clone()), depth + 1));
                            i += 2; // the `{` is handled by the main loop
                            continue;
                        }
                    }
                }
                "impl" => {
                    if let Some((owner, brace_idx)) = parse_impl_header(tokens, i + 1) {
                        scopes.push((Scope::Owner(owner), depth + 1));
                        i = brace_idx; // the `{` is handled by the main loop
                        continue;
                    }
                }
                "trait" => {
                    if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                        if let Some(brace_idx) = find_body_brace(tokens, i + 2) {
                            scopes.push((Scope::Owner(name.text.clone()), depth + 1));
                            i = brace_idx;
                            continue;
                        }
                    }
                }
                "fn" => {
                    if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                        match find_body_brace(tokens, i + 2) {
                            Some(body_start) => {
                                let body_end = match_brace(tokens, body_start);
                                let body = &tokens[body_start + 1..body_end.min(tokens.len())];
                                let mut f = RawFn {
                                    name: name.text.clone(),
                                    owner: scopes.iter().rev().find_map(|(s, _)| match s {
                                        Scope::Owner(n) => Some(n.clone()),
                                        Scope::Module(_) => None,
                                    }),
                                    module: scopes
                                        .iter()
                                        .filter_map(|(s, _)| match s {
                                            Scope::Module(n) => Some(n.clone()),
                                            Scope::Owner(_) => None,
                                        })
                                        .collect(),
                                    line: t.line,
                                    end_line: tokens
                                        .get(body_end.min(tokens.len().saturating_sub(1)))
                                        .map_or(t.line, |e| e.line),
                                    calls: Vec::new(),
                                    facts: FnFacts::default(),
                                };
                                extract_body(body, &hash_typed, &mut f);
                                file.fns.push(f);
                                i = body_end + 1;
                                continue;
                            }
                            None => {
                                // Bodyless declaration (`fn f(…);` in a
                                // trait): nothing to extract.
                                i += 2;
                                continue;
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        i += 1;
    }

    file
}

/// Skips a balanced `[…]` starting at the `[` at `open`; returns the index
/// past the closing `]`.
fn skip_brackets(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Finds the index of the body-opening `{` for an item whose signature
/// starts at `from`: the first `{` at paren/bracket depth 0. Returns `None`
/// when a top-level `;` terminates the item first (a bodyless declaration).
/// `where` clauses — including multi-line ones — carry no braces, so they
/// are skipped naturally.
fn find_body_brace(tokens: &[Token], from: usize) -> Option<usize> {
    let mut parens = 0usize;
    let mut brackets = 0usize;
    let mut j = from;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            parens += 1;
        } else if t.is_punct(')') {
            parens = parens.saturating_sub(1);
        } else if t.is_punct('[') {
            brackets += 1;
        } else if t.is_punct(']') {
            brackets = brackets.saturating_sub(1);
        } else if parens == 0 && brackets == 0 {
            if t.is_punct('{') {
                return Some(j);
            }
            if t.is_punct(';') {
                return None;
            }
        }
        j += 1;
    }
    None
}

/// Returns the index of the `}` matching the `{` at `open` (or the end of
/// input for unterminated bodies — the scanner's forgiving contract).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct('{') {
            depth += 1;
        } else if tokens[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Parses an `impl` header starting just past the `impl` keyword: returns
/// the implemented type's bare name and the index of the body `{`.
///
/// Handles `impl Type`, `impl<T> Type<T>`, `impl Trait for Type`,
/// `impl<T> Trait<T> for path::Type<T> where …` — the owner is the last
/// path segment of the type after `for` (or of the sole type when there is
/// no `for`).
fn parse_impl_header(tokens: &[Token], from: usize) -> Option<(String, usize)> {
    let brace = find_body_brace(tokens, from)?;
    let header = &tokens[from..brace];

    // Skip leading generic parameters `<…>` (angle depth; `->`'s `>` never
    // appears before the type position in a header's generics).
    let mut k = 0usize;
    if header.first().is_some_and(|t| t.is_punct('<')) {
        let mut angle = 0i32;
        while k < header.len() {
            if header[k].is_punct('<') {
                angle += 1;
            } else if header[k].is_punct('>') && !(k > 0 && header[k - 1].is_punct('-')) {
                angle -= 1;
                if angle == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    }

    // Prefer the path after a top-level `for`; otherwise the leading path.
    let mut angle = 0i32;
    let mut for_at: Option<usize> = None;
    for (j, t) in header.iter().enumerate().skip(k) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(j > 0 && header[j - 1].is_punct('-')) {
            angle -= 1;
        } else if angle == 0 && t.is_ident("for") {
            for_at = Some(j);
            break;
        }
    }
    let path_start = for_at.map_or(k, |j| j + 1);
    let owner = last_path_segment(header, path_start)?;
    Some((owner, brace))
}

/// The last identifier of the `::`-joined path starting at `from`
/// (skipping leading `&`/`mut`), stopping at the first token that is
/// neither an identifier nor `::`-colon punctuation.
fn last_path_segment(tokens: &[Token], from: usize) -> Option<String> {
    let mut j = from;
    while tokens
        .get(j)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        j += 1;
    }
    let mut last: Option<String> = None;
    while let Some(t) = tokens.get(j) {
        if t.kind == TokenKind::Ident {
            if t.is_ident("where") {
                break;
            }
            last = Some(t.text.clone());
            j += 1;
        } else if t.is_punct(':') {
            j += 1;
        } else {
            break;
        }
    }
    last
}

/// Parses one `use …;` starting just past the `use` keyword; flattens
/// `{…}` groups and `as` renames into [`Import`] leaves. Returns the index
/// past the terminating `;`.
fn parse_use(tokens: &[Token], from: usize, out: &mut Vec<Import>) -> usize {
    // Find the end of the statement first so a malformed use cannot run away.
    let mut end = from;
    let mut braces = 0usize;
    while end < tokens.len() {
        let t = &tokens[end];
        if t.is_punct('{') {
            braces += 1;
        } else if t.is_punct('}') {
            braces = braces.saturating_sub(1);
        } else if t.is_punct(';') && braces == 0 {
            break;
        }
        end += 1;
    }
    let mut prefix: Vec<String> = Vec::new();
    parse_use_tree(&tokens[from..end], 0, &mut prefix, out);
    end + 1
}

/// Recursive descent over one use-tree; `pos` advances over the slice.
fn parse_use_tree(toks: &[Token], mut pos: usize, prefix: &mut Vec<String>, out: &mut Vec<Import>) {
    let depth_at_entry = prefix.len();
    loop {
        match toks.get(pos) {
            Some(t) if t.kind == TokenKind::Ident && t.text != "as" => {
                prefix.push(t.text.clone());
                pos += 1;
                // `::` continues the path; anything else ends this leaf.
                if toks.get(pos).is_some_and(|n| n.is_punct(':'))
                    && toks.get(pos + 1).is_some_and(|n| n.is_punct(':'))
                {
                    pos += 2;
                    if toks.get(pos).is_some_and(|n| n.is_punct('{')) {
                        // Group: parse comma-separated subtrees.
                        pos += 1;
                        let mut item_start = pos;
                        let mut braces = 0usize;
                        while pos < toks.len() {
                            let t = &toks[pos];
                            if t.is_punct('{') {
                                braces += 1;
                            } else if t.is_punct('}') {
                                if braces == 0 {
                                    parse_use_tree(&toks[item_start..pos], 0, prefix, out);
                                    break;
                                }
                                braces -= 1;
                            } else if t.is_punct(',') && braces == 0 {
                                parse_use_tree(&toks[item_start..pos], 0, prefix, out);
                                item_start = pos + 1;
                            }
                            pos += 1;
                        }
                        prefix.truncate(depth_at_entry);
                        return;
                    }
                    continue;
                }
                // Leaf: optional `as` alias.
                let name = if toks.get(pos).is_some_and(|n| n.is_ident("as")) {
                    let alias = toks
                        .get(pos + 1)
                        .filter(|n| n.kind == TokenKind::Ident)
                        .map(|n| n.text.clone());
                    alias.unwrap_or_else(|| prefix.last().cloned().unwrap_or_default())
                } else {
                    prefix.last().cloned().unwrap_or_default()
                };
                if !name.is_empty() {
                    out.push(Import {
                        name,
                        path: prefix.join("::"),
                    });
                }
                prefix.truncate(depth_at_entry);
                return;
            }
            Some(t) if t.is_punct('*') => {
                out.push(Import {
                    name: "*".to_string(),
                    path: prefix.join("::"),
                });
                prefix.truncate(depth_at_entry);
                return;
            }
            _ => {
                prefix.truncate(depth_at_entry);
                return;
            }
        }
    }
}

/// Extracts call sites and nondeterminism facts from one body slice.
fn extract_body(body: &[Token], hash_typed: &BTreeSet<String>, f: &mut RawFn) {
    for j in 0..body.len() {
        let t = &body[j];
        let prev = j.checked_sub(1).map(|k| &body[k]);
        let prev2 = j.checked_sub(2).map(|k| &body[k]);
        // `::` is two `:` punct tokens, so the qualifying identifier of
        // `Qual::name` sits three tokens back.
        let prev3 = j.checked_sub(3).map(|k| &body[k]);
        let colon_colon_before =
            prev.is_some_and(|p| p.is_punct(':')) && prev2.is_some_and(|p| p.is_punct(':'));
        let next = body.get(j + 1);

        if t.kind == TokenKind::Number {
            if is_float_literal(&t.text) {
                f.facts.floats.push((t.line, t.text.clone()));
            }
            continue;
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();

        // Call site: `name(`, excluding keywords, macros (`name!(` never
        // reaches here because `!` sits between), and nested-`fn` names.
        if next.is_some_and(|n| n.is_punct('('))
            && !NON_CALL_IDENTS.contains(&name)
            && !prev.is_some_and(|p| p.is_ident("fn"))
        {
            let method = prev.is_some_and(|p| p.is_punct('.'));
            let qual = if colon_colon_before && prev3.is_some_and(|p| p.kind == TokenKind::Ident) {
                prev3.map(|p| p.text.clone())
            } else {
                None
            };
            f.calls.push(RawCall {
                name: name.to_string(),
                qual,
                method,
                line: t.line,
            });
        }

        // Facts.
        if CLOCK_IDENTS.contains(&name) {
            f.facts.clock.push((t.line, name.to_string()));
        }
        if ENTROPY_IDENTS.contains(&name) {
            f.facts.entropy.push((t.line, name.to_string()));
        }
        if FLOAT_IDENTS.contains(&name) {
            f.facts.floats.push((t.line, name.to_string()));
        }
        if ENV_IDENTS.contains(&name) {
            f.facts.env.push((t.line, name.to_string()));
        }
        if ENV_READ_FNS.contains(&name)
            && colon_colon_before
            && prev3.is_some_and(|p| p.is_ident("env"))
        {
            f.facts.env.push((t.line, format!("env::{name}")));
        }
        if (SORT_METHODS.contains(&name) && prev.is_some_and(|p| p.is_punct('.')))
            || ORDERED_COLLECTIONS.contains(&name)
        {
            f.facts.sorts = true;
        }
        if ITER_METHODS.contains(&name)
            && prev.is_some_and(|p| p.is_punct('.'))
            && prev2.is_some_and(|p| p.kind == TokenKind::Ident && hash_typed.contains(&p.text))
        {
            let receiver = prev2.map(|p| p.text.clone()).unwrap_or_default();
            f.facts
                .map_iter
                .push((t.line, format!("{receiver}.{name}()")));
        }
        // `for x in <expr containing a hash-typed name> {`: iteration order
        // taint even without an explicit `.iter()`.
        if name == "for" {
            let mut k = j + 1;
            let mut saw_in = false;
            while k < body.len() && !body[k].is_punct('{') && k < j + 64 {
                let b = &body[k];
                if b.is_ident("in") {
                    saw_in = true;
                } else if saw_in
                    && b.kind == TokenKind::Ident
                    && hash_typed.contains(&b.text)
                    // `map.iter()` after `in` is already counted above, and
                    // `name(…)` is a call whose return type is unknown (its
                    // body is analyzed on its own) — not a map read.
                    && !body
                        .get(k + 1)
                        .is_some_and(|n| n.is_punct('.') || n.is_punct('('))
                {
                    f.facts
                        .map_iter
                        .push((b.line, format!("for … in {}", b.text)));
                    break;
                }
                k += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn extract(src: &str) -> RawFile {
        extract_file("crates/x/src/lib.rs", &scan(src).tokens)
    }

    #[test]
    fn free_fns_and_methods_are_extracted_with_spans() {
        let src = "fn alpha() {\n    beta();\n}\nimpl Gamma {\n    fn beta(&self) { delta(); }\n}";
        let file = extract(src);
        assert_eq!(file.fns.len(), 2);
        assert_eq!(file.fns[0].name, "alpha");
        assert_eq!(file.fns[0].owner, None);
        assert_eq!((file.fns[0].line, file.fns[0].end_line), (1, 3));
        assert_eq!(file.fns[1].name, "beta");
        assert_eq!(file.fns[1].owner.as_deref(), Some("Gamma"));
        assert_eq!(file.fns[0].calls.len(), 1);
        assert_eq!(file.fns[0].calls[0].name, "beta");
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let src =
            "impl<T: Clone> fmt::Display for links::LinkTable<T> {\n fn render_rows(&self) {} }";
        let file = extract(src);
        assert_eq!(file.fns[0].owner.as_deref(), Some("LinkTable"));
    }

    #[test]
    fn where_clause_spanning_lines_does_not_break_body_detection() {
        let src = "impl Store {\n    fn load<K>(&self, k: K) -> u64\n    where\n        K: Ord,\n        K: Clone,\n    {\n        fetch(k)\n    }\n}";
        let file = extract(src);
        assert_eq!(file.fns.len(), 1);
        assert_eq!(file.fns[0].name, "load");
        assert_eq!(file.fns[0].calls[0].name, "fetch");
        assert_eq!(file.fns[0].end_line, 8);
    }

    #[test]
    fn macros_keywords_and_nested_fn_names_are_not_calls() {
        let src = "fn f() { if cond() { println!(\"x\"); } fn inner() {} inner(); }";
        let names: Vec<String> = extract(src).fns[0]
            .calls
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names, vec!["cond", "inner"]);
    }

    #[test]
    fn qualified_and_method_calls_are_tagged() {
        let src = "fn f() { Json::parse(x); report.render(); helper(); }";
        let calls = &extract(src).fns[0].calls;
        assert_eq!(calls[0].qual.as_deref(), Some("Json"));
        assert!(!calls[0].method);
        assert!(calls[1].method);
        assert_eq!(calls[1].qual, None);
        assert_eq!(calls[2].qual, None);
        assert!(!calls[2].method);
    }

    #[test]
    fn use_groups_and_renames_flatten() {
        let src = "use fdn_core::{checkpoint::capture, engine as eng, prelude::*};\nfn f() {}";
        let imports = extract(src).imports;
        assert!(imports.contains(&Import {
            name: "capture".into(),
            path: "fdn_core::checkpoint::capture".into()
        }));
        assert!(imports.contains(&Import {
            name: "eng".into(),
            path: "fdn_core::engine".into()
        }));
        assert!(imports.contains(&Import {
            name: "*".into(),
            path: "fdn_core::prelude".into()
        }));
    }

    #[test]
    fn facts_cover_every_source_alphabet() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n\
                   let t = Instant::now();\n\
                   let r = thread_rng();\n\
                   let x: f64 = 0.5;\n\
                   let n = std::env::var(\"N\");\n\
                   let p = std::thread::available_parallelism();\n\
                   for k in m.keys() { touch(k); }\n\
                   }";
        let facts = &extract(src).fns[0].facts;
        assert_eq!(facts.clock, vec![(2, "Instant".into())]);
        assert_eq!(facts.entropy, vec![(3, "thread_rng".into())]);
        assert_eq!(facts.floats, vec![(4, "f64".into()), (4, "0.5".into())]);
        assert_eq!(
            facts.env,
            vec![(5, "env::var".into()), (6, "available_parallelism".into())]
        );
        assert_eq!(facts.map_iter, vec![(7, "m.keys()".into())]);
        assert!(!facts.sorts);
    }

    #[test]
    fn sorting_marks_the_ordering_boundary() {
        let src =
            "fn f(m: HashMap<u32, u32>) { let mut v: Vec<_> = m.keys().collect(); v.sort(); }";
        let facts = &extract(src).fns[0].facts;
        assert!(facts.sorts);
        assert_eq!(facts.map_iter.len(), 1);
        let src =
            "fn g(m: HashMap<u32, u32>) { let b: BTreeMap<u32, u32> = m.into_iter().collect(); }";
        assert!(extract(src).fns[0].facts.sorts);
    }

    #[test]
    fn for_loop_over_hash_typed_name_is_iteration() {
        let src = "fn f(set: &HashSet<u32>) { for x in set { use_it(x); } }";
        let facts = &extract(src).fns[0].facts;
        assert_eq!(facts.map_iter, vec![(1, "for … in set".into())]);
    }

    #[test]
    fn module_paths_derive_from_file_paths() {
        assert_eq!(
            module_path_of("crates/lab/src/report.rs"),
            "fdn_lab::report"
        );
        assert_eq!(
            module_path_of("crates/netsim/src/links/mod.rs"),
            "fdn_netsim::links"
        );
        assert_eq!(module_path_of("crates/lab/src/main.rs"), "fdn_lab");
        assert_eq!(module_path_of("src/lib.rs"), "fully_defective");
        assert_eq!(module_path_of("crates/shims/rayon/src/lib.rs"), "rayon");
        assert_eq!(
            module_path_of("crates/lab/tests/fleet.rs"),
            "crates::lab::tests::fleet"
        );
    }

    #[test]
    fn hash_typed_names_cover_fields_params_and_lets() {
        let toks = scan(
            "struct S { map: HashMap<u32, u32> }\n\
             fn f(arg: &mut HashMap<u32, u32>) { let local = HashSet::new(); }",
        )
        .tokens;
        let names = collect_hash_typed(&toks);
        assert!(names.contains("map"));
        assert!(names.contains("arg"));
        assert!(names.contains("local"));
    }
}
