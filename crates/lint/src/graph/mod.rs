//! The workspace item/call graph — extraction layer of the flow rules.
//!
//! [`items`] parses each file's token stream into functions, imports and
//! nondeterminism facts; this module flattens those per-file results into a
//! single [`WorkspaceGraph`] with resolved call edges:
//!
//! - **method calls** (`recv.name(…)`) resolve by name against every
//!   workspace `impl`/`trait` method, *except* for a blacklist of ubiquitous
//!   std method names (`push`, `len`, `get`, …) that would otherwise wire
//!   every `Vec::push` to an unrelated workspace method of the same name;
//! - **qualified calls** (`Qual::name(…)`) resolve through the owner-type
//!   map (`Self` uses the caller's owner), then through the caller's
//!   imports when `Qual` names a workspace module;
//! - **bare calls** (`name(…)`) prefer free functions of the same file,
//!   then import-refined matches, then any workspace free function of that
//!   name (over-approximate on purpose — a spurious edge can only make the
//!   taint pass *more* conservative);
//! - everything else stays an **external leaf**, kept by name so the DOT
//!   export shows the boundary of the analysis.
//!
//! The graph is byte-deterministic: files are sorted, functions are in
//! (file, line) order, edges are sorted and deduplicated, and both
//! serializers ([`WorkspaceGraph::to_json_string`] and
//! [`WorkspaceGraph::to_dot`]) iterate only ordered containers. CI runs the
//! export twice and `cmp`s the bytes.

pub mod items;

use fdn_lab::Json;
use items::{FnFacts, Import, RawCall, RawFile};
use std::collections::{BTreeMap, BTreeSet};

/// Method names so common in std that resolving them by bare name across
/// the workspace would create false edges from nearly every function (for
/// example `.push(…)` on a `Vec` must not become an edge to
/// `Transcript::push`). Qualified calls (`Transcript::push(…)` or
/// `Self::push(…)`) still resolve normally.
const COMMON_STD_METHODS: [&str; 56] = [
    "and_then",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "count",
    "default",
    "drain",
    "entry",
    "eq",
    "extend",
    "filter",
    "flat_map",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "len",
    "map",
    "max",
    "min",
    "new",
    "next",
    "or_insert",
    "parse",
    "pop",
    "push",
    "push_str",
    "remove",
    "rev",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "unwrap_or",
    "values",
    "with_capacity",
];

/// One function node of the flattened graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative file path.
    pub file: String,
    /// Full module path including in-file `mod` nesting.
    pub module: String,
    /// Owning `impl`/`trait` type, if any.
    pub owner: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 1-indexed `fn` line.
    pub line: u32,
    /// 1-indexed body-closing line.
    pub end_line: u32,
    /// Nondeterminism facts of the body.
    pub facts: FnFacts,
}

impl FnNode {
    /// Display name: `module::Owner::name` (owner omitted for free fns).
    pub fn qual(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{}::{}::{}", self.module, owner, self.name),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// The target of one call edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Callee {
    /// A workspace function, by index into [`WorkspaceGraph::fns`].
    Internal(usize),
    /// An unresolved name, kept as an external leaf.
    External(String),
}

/// The flattened, resolved workspace call graph.
#[derive(Debug, Clone)]
pub struct WorkspaceGraph {
    /// Sorted workspace-relative file paths.
    pub files: Vec<String>,
    /// Function nodes in (file, line) order.
    pub fns: Vec<FnNode>,
    /// Sorted, deduplicated `(caller index, callee)` edges.
    pub edges: Vec<(usize, Callee)>,
    /// Reverse adjacency over internal edges: `callers[i]` lists every
    /// function with an edge *to* `i`, sorted.
    callers: Vec<Vec<usize>>,
}

impl WorkspaceGraph {
    /// Builds the graph from per-file extraction results.
    pub fn build(mut raw: Vec<RawFile>) -> WorkspaceGraph {
        raw.sort_by(|a, b| a.path.cmp(&b.path));

        // Flatten functions; remember each one's raw calls and file index.
        let mut fns: Vec<FnNode> = Vec::new();
        let mut raw_calls: Vec<Vec<RawCall>> = Vec::new();
        let mut file_of: Vec<usize> = Vec::new();
        let mut imports: Vec<Vec<Import>> = Vec::with_capacity(raw.len());
        let files: Vec<String> = raw.iter().map(|f| f.path.clone()).collect();
        for (fi, file) in raw.iter_mut().enumerate() {
            imports.push(std::mem::take(&mut file.imports));
            for f in file.fns.drain(..) {
                let module = if f.module.is_empty() {
                    file.module.clone()
                } else {
                    format!("{}::{}", file.module, f.module.join("::"))
                };
                fns.push(FnNode {
                    file: file.path.clone(),
                    module,
                    owner: f.owner,
                    name: f.name,
                    line: f.line,
                    end_line: f.end_line,
                    facts: f.facts,
                });
                raw_calls.push(f.calls);
                file_of.push(fi);
            }
        }

        // Resolution maps (all ordered for determinism).
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut file_free: BTreeMap<(usize, &str), Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_module: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, n) in fns.iter().enumerate() {
            match &n.owner {
                Some(owner) => {
                    typed.entry((owner, &n.name)).or_default().push(i);
                    methods.entry(&n.name).or_default().push(i);
                }
                None => {
                    free_by_name.entry(&n.name).or_default().push(i);
                    file_free.entry((file_of[i], &n.name)).or_default().push(i);
                    by_module.entry((&n.module, &n.name)).or_default().push(i);
                }
            }
        }
        // Module paths by last segment, for resolving `seg::free_fn(…)`
        // calls where `seg` is the tail of a workspace module path.
        let mut module_tails: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for n in &fns {
            let tail = n.module.rsplit("::").next().unwrap_or(&n.module);
            let entry = module_tails.entry(tail).or_default();
            if !entry.contains(&n.module.as_str()) {
                entry.push(&n.module);
            }
        }

        // Resolve every call site.
        let mut edge_set: BTreeSet<(usize, Callee)> = BTreeSet::new();
        for (caller, calls) in raw_calls.iter().enumerate() {
            let caller_node = &fns[caller];
            for call in calls {
                let mut targets: Vec<usize> = Vec::new();
                if call.method {
                    if !COMMON_STD_METHODS.contains(&call.name.as_str()) {
                        if let Some(m) = methods.get(call.name.as_str()) {
                            targets.extend(m);
                        }
                    }
                } else if let Some(q) = &call.qual {
                    let owner_key: &str = if q == "Self" {
                        caller_node.owner.as_deref().unwrap_or("Self")
                    } else {
                        q
                    };
                    if let Some(m) = typed.get(&(owner_key, call.name.as_str())) {
                        targets.extend(m);
                    } else {
                        // `Qual` may name a module: resolve through the
                        // caller's imports, then by module-path tail.
                        for module in qual_modules(q, &imports[file_of[caller]], &module_tails) {
                            if let Some(m) = by_module.get(&(module, call.name.as_str())) {
                                targets.extend(m);
                            }
                        }
                    }
                } else {
                    // Bare call: same file first, then import-refined, then
                    // any workspace free fn of that name.
                    if let Some(m) = file_free.get(&(file_of[caller], call.name.as_str())) {
                        targets.extend(m);
                    } else {
                        let mut refined = false;
                        for imp in &imports[file_of[caller]] {
                            if imp.name == call.name {
                                if let Some((module, leaf)) = imp.path.rsplit_once("::") {
                                    if leaf == call.name {
                                        if let Some(m) = by_module.get(&(module, leaf)) {
                                            targets.extend(m);
                                            refined = true;
                                        }
                                    }
                                }
                            }
                        }
                        if !refined {
                            if let Some(m) = free_by_name.get(call.name.as_str()) {
                                targets.extend(m);
                            }
                        }
                    }
                }

                if targets.is_empty() {
                    let label = match (&call.qual, call.method) {
                        (Some(q), _) => format!("{}::{}", q, call.name),
                        (None, true) => format!(".{}", call.name),
                        (None, false) => call.name.clone(),
                    };
                    edge_set.insert((caller, Callee::External(label)));
                } else {
                    for t in targets {
                        if t != caller {
                            edge_set.insert((caller, Callee::Internal(t)));
                        }
                    }
                }
            }
        }

        let edges: Vec<(usize, Callee)> = edge_set.into_iter().collect();
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (caller, callee) in &edges {
            if let Callee::Internal(t) = callee {
                callers[*t].push(*caller);
            }
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }

        WorkspaceGraph {
            files,
            fns,
            edges,
            callers,
        }
    }

    /// Sorted callers of function `i` (internal edges only).
    pub fn callers_of(&self, i: usize) -> &[usize] {
        &self.callers[i]
    }

    /// The sorted internal callees of function `i`.
    pub fn internal_callees_of(&self, i: usize) -> Vec<usize> {
        // Edges are sorted by (caller, callee), so a range scan would also
        // work; a filter keeps this obviously correct.
        self.edges
            .iter()
            .filter_map(|(c, callee)| match callee {
                Callee::Internal(t) if *c == i => Some(*t),
                _ => None,
            })
            .collect()
    }

    /// Renders the graph as deterministic JSON. `roles[i]` annotates
    /// function `i` with its flow roles (`source:clock`, `boundary:map_iter`,
    /// `sink`, …); pass an empty slice to omit the annotations.
    pub fn to_json_string(&self, roles: &[Vec<String>]) -> String {
        Json::obj(vec![
            ("tool", Json::Str("fdn-lint-graph".to_string())),
            ("version", Json::Num(1.0)),
            (
                "files",
                Json::Arr(self.files.iter().map(|f| Json::Str(f.clone())).collect()),
            ),
            (
                "fns",
                Json::Arr(
                    self.fns
                        .iter()
                        .enumerate()
                        .map(|(i, n)| {
                            let mut fields = vec![
                                ("id", Json::Num(i as f64)),
                                ("qual", Json::Str(n.qual())),
                                ("file", Json::Str(n.file.clone())),
                                ("line", Json::Num(n.line as f64)),
                                ("end_line", Json::Num(n.end_line as f64)),
                                (
                                    "facts",
                                    Json::Arr(
                                        fact_kinds(&n.facts)
                                            .into_iter()
                                            .map(|k| Json::Str(k.to_string()))
                                            .collect(),
                                    ),
                                ),
                            ];
                            if let Some(r) = roles.get(i) {
                                if !r.is_empty() {
                                    fields.push((
                                        "roles",
                                        Json::Arr(r.iter().map(|s| Json::Str(s.clone())).collect()),
                                    ));
                                }
                            }
                            Json::obj(fields)
                        })
                        .collect(),
                ),
            ),
            (
                "edges",
                Json::Arr(
                    self.edges
                        .iter()
                        .map(|(caller, callee)| {
                            Json::obj(match callee {
                                Callee::Internal(t) => vec![
                                    ("caller", Json::Num(*caller as f64)),
                                    ("callee", Json::Num(*t as f64)),
                                ],
                                Callee::External(name) => vec![
                                    ("caller", Json::Num(*caller as f64)),
                                    ("external", Json::Str(name.clone())),
                                ],
                            })
                        })
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Renders the graph in Graphviz DOT form: workspace functions as solid
    /// nodes, external leaves dashed, one edge per resolved call.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph fdn_workspace {\n    rankdir=LR;\n");
        for (i, n) in self.fns.iter().enumerate() {
            out.push_str(&format!(
                "    n{} [label=\"{}\"];\n",
                i,
                n.qual().replace('"', "\\\"")
            ));
        }
        // External leaves: deduplicated, sorted, one node each.
        let externals: BTreeSet<&str> = self
            .edges
            .iter()
            .filter_map(|(_, c)| match c {
                Callee::External(name) => Some(name.as_str()),
                Callee::Internal(_) => None,
            })
            .collect();
        let ext_ids: BTreeMap<&str, usize> =
            externals.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        for (name, i) in &ext_ids {
            out.push_str(&format!(
                "    x{} [label=\"{}\", style=dashed];\n",
                i,
                name.replace('"', "\\\"")
            ));
        }
        for (caller, callee) in &self.edges {
            match callee {
                Callee::Internal(t) => out.push_str(&format!("    n{caller} -> n{t};\n")),
                Callee::External(name) => out.push_str(&format!(
                    "    n{caller} -> x{} [style=dashed];\n",
                    ext_ids[name.as_str()]
                )),
            }
        }
        out.push_str("}\n");
        out
    }
}

/// The sorted fact-kind labels present on a function.
fn fact_kinds(facts: &FnFacts) -> Vec<&'static str> {
    let mut out = Vec::new();
    if !facts.clock.is_empty() {
        out.push("clock");
    }
    if !facts.entropy.is_empty() {
        out.push("entropy");
    }
    if !facts.env.is_empty() {
        out.push("env");
    }
    if !facts.floats.is_empty() {
        out.push("float");
    }
    if !facts.map_iter.is_empty() {
        out.push("map_iter");
    }
    if facts.sorts {
        out.push("sorts");
    }
    out
}

/// The candidate workspace module paths a qualifier `q` may denote: the
/// caller's imports binding `q` (to either `…::q` itself or a type inside a
/// module), then any workspace module whose path ends in `::q`.
fn qual_modules<'a>(
    q: &str,
    imports: &'a [Import],
    module_tails: &'a BTreeMap<&'a str, Vec<&'a str>>,
) -> Vec<&'a str> {
    let mut out: Vec<&str> = Vec::new();
    for imp in imports {
        if imp.name == q && imp.path.ends_with(&format!("::{q}")) {
            out.push(&imp.path);
        }
    }
    if let Some(tails) = module_tails.get(q) {
        for m in tails {
            if !out.contains(m) {
                out.push(m);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn graph_of(files: &[(&str, &str)]) -> WorkspaceGraph {
        WorkspaceGraph::build(
            files
                .iter()
                .map(|(path, src)| items::extract_file(path, &scan(src).tokens))
                .collect(),
        )
    }

    fn idx(g: &WorkspaceGraph, name: &str) -> usize {
        g.fns.iter().position(|n| n.name == name).unwrap()
    }

    fn has_edge(g: &WorkspaceGraph, from: &str, to: &str) -> bool {
        let (f, t) = (idx(g, from), idx(g, to));
        g.edges.contains(&(f, Callee::Internal(t)))
    }

    #[test]
    fn bare_calls_resolve_same_file_then_cross_file() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "fn caller() { helper(); distant(); }\nfn helper() {}",
            ),
            ("crates/b/src/lib.rs", "fn distant() {}"),
        ]);
        assert!(has_edge(&g, "caller", "helper"));
        assert!(has_edge(&g, "caller", "distant"));
    }

    #[test]
    fn common_std_methods_do_not_create_false_edges() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "impl Transcript { fn push(&mut self, x: u8) {} fn render_rows(&self) {} }",
            ),
            (
                "crates/b/src/lib.rs",
                "fn caller(v: &mut Vec<u8>, t: &T) { v.push(1); t.render_rows(); }",
            ),
        ]);
        assert!(
            !has_edge(&g, "caller", "push"),
            "`.push(` must stay external"
        );
        assert!(has_edge(&g, "caller", "render_rows"));
    }

    #[test]
    fn qualified_and_self_calls_resolve_through_owners() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "impl Store { fn load() { Self::decode(); } fn decode() {} }\n\
             fn free() { Store::load(); Missing::nope(); }",
        )]);
        assert!(has_edge(&g, "load", "decode"));
        assert!(has_edge(&g, "free", "load"));
        let free = idx(&g, "free");
        assert!(g
            .edges
            .contains(&(free, Callee::External("Missing::nope".to_string()))));
    }

    #[test]
    fn module_qualified_free_fn_resolves_by_tail() {
        let g = graph_of(&[
            ("crates/lab/src/report.rs", "pub fn render_all() {}"),
            (
                "crates/lab/src/main.rs",
                "use fdn_lab::report;\nfn main() { report::render_all(); }",
            ),
        ]);
        assert!(has_edge(&g, "main", "render_all"));
    }

    #[test]
    fn callers_of_is_the_reverse_adjacency() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn a() { c(); }\nfn b() { c(); }\nfn c() {}",
        )]);
        let c = idx(&g, "c");
        assert_eq!(g.callers_of(c), &[idx(&g, "a"), idx(&g, "b")]);
        assert_eq!(g.internal_callees_of(idx(&g, "a")), vec![c]);
    }

    #[test]
    fn json_and_dot_are_deterministic_and_ordered() {
        let files = [
            ("crates/b/src/lib.rs", "fn beta() { alpha(); ext(); }"),
            ("crates/a/src/lib.rs", "pub fn alpha() {}"),
        ];
        let a = graph_of(&files);
        let mut rev = files;
        rev.reverse();
        let b = graph_of(&rev);
        assert_eq!(a.to_json_string(&[]), b.to_json_string(&[]));
        assert_eq!(a.to_dot(), b.to_dot());
        // Files are sorted regardless of input order.
        assert_eq!(a.files, vec!["crates/a/src/lib.rs", "crates/b/src/lib.rs"]);
        assert!(a.to_dot().contains("style=dashed"));
        assert!(a.to_json_string(&[]).contains("\"external\": \"ext\""));
    }
}
