//! A comment-, string- and raw-string-aware token scanner for Rust sources.
//!
//! The lint rules in this crate are *lexical*: they match identifier
//! sequences (`Instant`, `HashMap`, `unsafe`, …) in **code**, never in
//! comments or string literals. Getting that distinction right is the whole
//! job of this module — a naive `grep` would flag `// like Instant::now()`
//! in a doc comment or `"fdn-lint: allow(D6) -- nope"` inside a string, and
//! a pragma smuggled into a string literal must *not* count as a
//! suppression. The scanner therefore performs a single character-level pass
//! that classifies every byte of the source as exactly one of:
//!
//! - **code** — emitted as [`Token`]s (identifiers, numbers, punctuation);
//! - **line comment** — captured as [`CommentLine`]s so the pragma layer can
//!   parse `fdn-lint:` directives out of them;
//! - **block comment** (with arbitrary nesting, per the Rust grammar),
//!   **string**, **raw string** (any number of `#` guards), **byte string**,
//!   or **char literal** — all skipped.
//!
//! The classic `'a'`-versus-`'a` lifetime ambiguity is resolved the same way
//! rustc's lexer does at this depth: a quote followed by an identifier
//! character is a lifetime (code, skipped as such) unless the character
//! after the identifier closes the quote.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`Instant`, `unsafe`, `mod`, …).
    Ident,
    /// A numeric literal (`42`, `1.5e3`, `0xFF`, `2.0f64`).
    Number,
    /// A single punctuation character (`:`, `!`, `{`, …).
    Punct,
}

/// One code token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// The token text (a single character for [`TokenKind::Punct`]).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One `//` line comment (any flavour: `//`, `///`, `//!`), captured for
/// pragma parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommentLine {
    /// 1-indexed line the comment starts on.
    pub line: u32,
    /// Comment text *after* the leading `//` (slashes and outer doc markers
    /// included — the pragma parser searches for `fdn-lint:` anywhere in it).
    pub text: String,
}

/// The output of [`scan`]: the code tokens and the line comments of one file.
#[derive(Debug, Clone, Default)]
pub struct ScannedFile {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<CommentLine>,
}

impl ScannedFile {
    /// The set of lines that carry at least one code token — used by the
    /// pragma layer to find the "next code line" a standalone pragma governs.
    pub fn code_lines(&self) -> Vec<u32> {
        let mut lines: Vec<u32> = self.tokens.iter().map(|t| t.line).collect();
        lines.dedup();
        lines
    }
}

/// Scans `source` into code tokens and line comments.
///
/// The scanner never fails: unterminated constructs (a string or block
/// comment running to end-of-file) simply consume the rest of the input,
/// which is the forgiving behaviour a lint pass wants on work-in-progress
/// files.
pub fn scan(source: &str) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut out = ScannedFile::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances past `n` characters, counting newlines.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment: capture text to end of line.
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut text = String::new();
            bump!(2);
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                bump!(1);
            }
            // CRLF sources: the '\r' before the newline is line-ending
            // noise, not comment text (it would otherwise poison the
            // mandatory `-- reason` tail of a pragma).
            if text.ends_with('\r') {
                text.pop();
            }
            out.comments.push(CommentLine {
                line: start_line,
                text,
            });
            continue;
        }

        // Block comment: skip with nesting.
        if c == '/' && next == Some('*') {
            bump!(2);
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }

        // Raw string (r"…", r#"…"#, …) or raw byte string (br#"…"#).
        if c == 'r' || (c == 'b' && next == Some('r')) {
            let hash_start = if c == 'r' { i + 1 } else { i + 2 };
            let mut hashes = 0usize;
            while chars.get(hash_start + hashes) == Some(&'#') {
                hashes += 1;
            }
            if chars.get(hash_start + hashes) == Some(&'"') {
                // Consume the prefix, guards and opening quote.
                bump!(hash_start + hashes + 1 - i);
                // Scan to `"` followed by `hashes` `#`s.
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            bump!(1 + hashes);
                            break 'raw;
                        }
                    }
                    bump!(1);
                }
                continue;
            }
            // Not a raw string — fall through to identifier handling.
        }

        // Ordinary string or byte string.
        if c == '"' || (c == 'b' && next == Some('"')) {
            bump!(if c == 'b' { 2 } else { 1 });
            while i < chars.len() {
                if chars[i] == '\\' {
                    bump!(2);
                } else if chars[i] == '"' {
                    bump!(1);
                    break;
                } else {
                    bump!(1);
                }
            }
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let n1 = chars.get(i + 1).copied();
            if n1 == Some('\\') {
                // Escaped char literal: '\n', '\'', '\u{…}'.
                bump!(2);
                while i < chars.len() && chars[i] != '\'' {
                    bump!(1);
                }
                bump!(1);
                continue;
            }
            let is_ident_char = |c: char| c.is_alphanumeric() || c == '_';
            if let Some(n1c) = n1 {
                if is_ident_char(n1c) && chars.get(i + 2) != Some(&'\'') {
                    // Lifetime ('a, 'static): skip quote + identifier.
                    bump!(2);
                    while i < chars.len() && is_ident_char(chars[i]) {
                        bump!(1);
                    }
                    continue;
                }
                // Plain char literal 'x' (or the degenerate '''/quote pair).
                bump!(2);
                if chars.get(i) == Some(&'\'') {
                    bump!(1);
                }
                continue;
            }
            bump!(1);
            continue;
        }

        // Identifier or keyword.
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                bump!(1);
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line: start_line,
            });
            continue;
        }

        // Numeric literal (including float suffixes and exponents, so `2.5`,
        // `1e3` and `0.5f64` each arrive as a single Number token — rule D4
        // inspects the text for float shape).
        if c.is_ascii_digit() {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() {
                let d = chars[i];
                let take = d.is_alphanumeric()
                    || d == '_'
                    || (d == '.' && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit()))
                    || ((d == '+' || d == '-')
                        && matches!(text.chars().last(), Some('e') | Some('E'))
                        && !text.starts_with("0x"));
                if !take {
                    break;
                }
                text.push(d);
                bump!(1);
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text,
                line: start_line,
            });
            continue;
        }

        // Punctuation (or whitespace).
        if !c.is_whitespace() {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
            });
        }
        bump!(1);
    }

    out
}

/// Returns a copy of `file.tokens` with every token inside a
/// `#[cfg(test)] mod … { … }` block removed.
///
/// Test-only modules embedded in `src/` files are exempt from the lint rules
/// (separate `tests/` files are handled by path policy instead): a seeded
/// `StdRng` or a wall-clock assertion in a unit test is not a determinism
/// hazard because test code never feeds a byte-gated artifact. The match is
/// purely lexical — the exact token sequence `# [ cfg ( test ) ]` followed
/// by an optional `pub`, then `mod <name> {`, skipping to the matching
/// closing brace.
pub fn mask_cfg_test(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // `#[cfg(test)]` is 7 tokens; look for `pub? mod ident {`.
            let mut j = i + 7;
            if tokens.get(j).is_some_and(|t| t.is_ident("pub")) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_ident("mod"))
                && tokens
                    .get(j + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident)
                && tokens.get(j + 2).is_some_and(|t| t.is_punct('{'))
            {
                // Skip to the matching close brace.
                let mut depth = 1usize;
                let mut k = j + 3;
                while k < tokens.len() && depth > 0 {
                    if tokens[k].is_punct('{') {
                        depth += 1;
                    } else if tokens[k].is_punct('}') {
                        depth -= 1;
                    }
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// True when `tokens[at..]` begins with the exact sequence `# [ cfg ( test ) ]`.
fn is_cfg_test_attr(tokens: &[Token], at: usize) -> bool {
    let expected: [(&str, bool); 7] = [
        ("#", false),
        ("[", false),
        ("cfg", true),
        ("(", false),
        ("test", true),
        (")", false),
        ("]", false),
    ];
    expected.iter().enumerate().all(|(k, (text, ident))| {
        tokens.get(at + k).is_some_and(|t| {
            t.text == *text
                && (t.kind == TokenKind::Ident) == *ident
                && (*ident || t.kind == TokenKind::Punct)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        scan(source)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // Instant::now() in a comment
            /* HashMap in /* a nested */ block comment */
            let s = "unsafe in a string";
            let r = r#"SystemTime in a raw string"#;
            let code = marker;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"marker".to_string()));
        for hidden in ["Instant", "HashMap", "unsafe", "SystemTime"] {
            assert!(!ids.contains(&hidden.to_string()), "{hidden} leaked");
        }
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; after";
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "first\n\"two\nlines\"\nfourth";
        let file = scan(src);
        let fourth = file.tokens.iter().find(|t| t.text == "fourth").unwrap();
        assert_eq!(fourth.line, 4);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "code();\n// fdn-lint: allow(D1) -- reason\nmore();";
        let file = scan(src);
        assert_eq!(file.comments.len(), 1);
        assert_eq!(file.comments[0].line, 2);
        assert!(file.comments[0].text.contains("fdn-lint"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() { } #[cfg(test)] mod tests { fn hidden() { } } fn tail() { }";
        let file = scan(src);
        let masked = mask_cfg_test(&file.tokens);
        let ids: Vec<&str> = masked
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ids.contains(&"live"));
        assert!(ids.contains(&"tail"));
        assert!(!ids.contains(&"hidden"));
    }
}
