//! Inline suppression pragmas.
//!
//! A finding is suppressed by a **line-comment** pragma of the form
//!
//! ```text
//! // fdn-lint: allow(D1) -- wall clock feeds the --timings sidecar only
//! // fdn-lint: allow(D2, D4) -- lookup table, never iterated for output
//! ```
//!
//! The rule list names one or more rule ids; the `--` reason is
//! **mandatory** — an allow without a written justification is itself a
//! finding ([`crate::rules::RuleId::P1`]), because the pragma trail is the
//! documentation of every sanctioned exception to the determinism contract.
//!
//! A pragma governs the line it appears on (trailing-comment form) and, when
//! it stands alone on its line, the next line that carries any code token.
//! Doc comments between a pragma and its target do not break the link;
//! attributes (which are code) do. Pragmas inside string literals are
//! invisible here by construction: the scanner only surfaces *comments*.

use crate::rules::RuleId;
use crate::scanner::ScannedFile;

/// One parsed `fdn-lint: allow(…) -- …` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-indexed line of the comment carrying the pragma.
    pub line: u32,
    /// Rules the pragma allows.
    pub rules: Vec<RuleId>,
    /// The written justification (text after `--`).
    pub reason: String,
}

/// A malformed `fdn-lint:` directive (unknown rule, missing reason, or
/// unparseable shape) — reported as a finding, never honoured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedPragma {
    /// 1-indexed line of the offending comment.
    pub line: u32,
    /// What was wrong with it.
    pub problem: String,
}

/// The pragma layer's view of one file: valid suppressions plus malformed
/// directives.
#[derive(Debug, Clone, Default)]
pub struct Pragmas {
    /// Well-formed pragmas.
    pub allows: Vec<Pragma>,
    /// Directives that mentioned `fdn-lint:` but did not parse.
    pub malformed: Vec<MalformedPragma>,
    /// For each pragma (same order as `allows`): the set of lines it
    /// governs.
    targets: Vec<Vec<u32>>,
}

impl Pragmas {
    /// True when `rule` is suppressed at `line` by some pragma.
    pub fn suppresses(&self, rule: RuleId, line: u32) -> bool {
        self.allows
            .iter()
            .zip(&self.targets)
            .any(|(p, lines)| p.rules.contains(&rule) && lines.contains(&line))
    }
}

/// The marker every directive starts with.
const MARKER: &str = "fdn-lint:";

/// Extracts pragmas from a scanned file.
///
/// A directive must be the *first* thing in its comment (after any extra
/// `/`/`!` doc markers and whitespace): `// fdn-lint: allow(…) -- …`. Prose
/// that merely mentions `fdn-lint:` mid-sentence — this crate's own
/// documentation, say — is not a directive and is ignored.
pub fn collect(file: &ScannedFile) -> Pragmas {
    let code_lines = file.code_lines();
    let mut out = Pragmas::default();
    for comment in &file.comments {
        let head = comment.text.trim_start_matches(['/', '!']).trim_start();
        let Some(directive) = head.strip_prefix(MARKER) else {
            continue;
        };
        let directive = directive.trim();
        match parse_directive(directive) {
            Ok((rules, reason)) => {
                let mut lines = vec![comment.line];
                // Standalone pragma: also govern the next code line. A
                // trailing pragma shares its line with code, in which case
                // the comment line itself is the only target.
                if !code_lines.contains(&comment.line) {
                    if let Some(&next) = code_lines.iter().find(|&&l| l > comment.line) {
                        lines.push(next);
                    }
                }
                out.allows.push(Pragma {
                    line: comment.line,
                    rules,
                    reason: reason.to_string(),
                });
                out.targets.push(lines);
            }
            Err(problem) => out.malformed.push(MalformedPragma {
                line: comment.line,
                problem,
            }),
        }
    }
    out
}

/// Parses `allow(D1, D2) -- reason` into rules + reason.
fn parse_directive(directive: &str) -> Result<(Vec<RuleId>, &str), String> {
    let rest = directive
        .strip_prefix("allow")
        .ok_or_else(|| format!("expected `allow(...)`, found `{directive}`"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "missing `(` after `allow`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "missing `)` in rule list".to_string())?;
    let (list, after) = rest.split_at(close);
    let mut rules = Vec::new();
    for part in list.split(',') {
        let name = part.trim();
        if name.is_empty() {
            return Err("empty rule list".to_string());
        }
        let rule = RuleId::parse(name).ok_or_else(|| format!("unknown rule id `{name}`"))?;
        if !rules.contains(&rule) {
            rules.push(rule);
        }
    }
    let after = after[1..].trim_start(); // past `)`
    let reason = after
        .strip_prefix("--")
        .map(str::trim)
        .ok_or_else(|| "missing `-- <reason>` justification".to_string())?;
    if reason.is_empty() {
        return Err("empty `-- <reason>` justification".to_string());
    }
    Ok((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    #[test]
    fn trailing_pragma_governs_its_own_line() {
        let file = scan("let x = now(); // fdn-lint: allow(D1) -- trailing\nlet y = 1;");
        let pragmas = collect(&file);
        assert!(pragmas.suppresses(RuleId::D1, 1));
        assert!(!pragmas.suppresses(RuleId::D1, 2));
    }

    #[test]
    fn standalone_pragma_governs_next_code_line() {
        let src =
            "// fdn-lint: allow(D2, D6) -- multi-rule\n/// doc comment\nlet x = 1;\nlet y = 2;";
        let pragmas = collect(&scan(src));
        assert!(pragmas.suppresses(RuleId::D2, 3));
        assert!(pragmas.suppresses(RuleId::D6, 3));
        assert!(!pragmas.suppresses(RuleId::D2, 4));
        assert!(!pragmas.suppresses(RuleId::D1, 3));
    }

    #[test]
    fn missing_reason_is_malformed() {
        let pragmas = collect(&scan("// fdn-lint: allow(D1)\nlet x = 1;"));
        assert!(pragmas.allows.is_empty());
        assert_eq!(pragmas.malformed.len(), 1);
        assert!(pragmas.malformed[0].problem.contains("reason"));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let pragmas = collect(&scan("// fdn-lint: allow(D99) -- what\nlet x = 1;"));
        assert!(pragmas.allows.is_empty());
        assert!(pragmas.malformed[0].problem.contains("unknown rule"));
    }

    #[test]
    fn pragma_inside_string_is_invisible() {
        let pragmas = collect(&scan("let s = \"fdn-lint: allow(D6) -- nope\";"));
        assert!(pragmas.allows.is_empty());
        assert!(pragmas.malformed.is_empty());
    }
}
