//! Deterministic renderers for a lint run.
//!
//! Like every artifact in this repository, lint output is a pure function
//! of the scanned sources: findings are sorted by `(file, line, rule)`,
//! paths are workspace-relative, and no clock, hostname or absolute path
//! ever enters the bytes. CI runs the scan twice and `cmp`s the JSON.

use crate::baseline::{Baseline, BaselineEntry};
use crate::rules::{Finding, ALL_RULES};
use fdn_lab::Json;

/// The outcome of linting a file set against a baseline.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Every finding, sorted, with its baseline status.
    pub findings: Vec<(Finding, FindingStatus)>,
    /// Baseline entries that matched nothing.
    pub stale: Vec<BaselineEntry>,
}

/// Whether a finding is gated or grandfathered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingStatus {
    /// Not in the baseline: fails the gate (exit 2).
    New,
    /// Recorded in the baseline: reported, tolerated.
    Baselined,
}

impl FindingStatus {
    fn name(self) -> &'static str {
        match self {
            FindingStatus::New => "new",
            FindingStatus::Baselined => "baselined",
        }
    }
}

impl LintReport {
    /// Classifies `findings` against `baseline`.
    pub fn new(files_scanned: usize, mut findings: Vec<Finding>, baseline: &Baseline) -> Self {
        findings.sort();
        let stale = baseline.stale(&findings);
        let findings = findings
            .into_iter()
            .map(|f| {
                let status = if baseline.contains(&f) {
                    FindingStatus::Baselined
                } else {
                    FindingStatus::New
                };
                (f, status)
            })
            .collect();
        LintReport {
            files_scanned,
            findings,
            stale,
        }
    }

    /// Number of gate-failing findings.
    pub fn new_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|(_, s)| *s == FindingStatus::New)
            .count()
    }

    /// Number of grandfathered findings.
    pub fn baselined_count(&self) -> usize {
        self.findings.len() - self.new_count()
    }

    /// True when the gate passes (no unbaselined findings).
    pub fn is_clean(&self) -> bool {
        self.new_count() == 0
    }

    /// Renders the report as deterministic JSON.
    pub fn to_json_string(&self) -> String {
        Json::obj(vec![
            ("tool", Json::Str("fdn-lint".to_string())),
            ("version", Json::Num(1.0)),
            ("files_scanned", Json::Num(self.files_scanned as f64)),
            ("new", Json::Num(self.new_count() as f64)),
            ("baselined", Json::Num(self.baselined_count() as f64)),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|(f, status)| {
                            let mut fields = vec![
                                ("file", Json::Str(f.file.clone())),
                                ("line", Json::Num(f.line as f64)),
                                ("rule", Json::Str(f.rule.name().to_string())),
                                ("message", Json::Str(f.message.clone())),
                                ("status", Json::Str(status.name().to_string())),
                            ];
                            // Flow findings carry the source→sink call path;
                            // lexical findings keep the original byte shape.
                            if !f.path.is_empty() {
                                fields.push((
                                    "path",
                                    Json::Arr(
                                        f.path.iter().map(|p| Json::Str(p.clone())).collect(),
                                    ),
                                ));
                            }
                            Json::obj(fields)
                        })
                        .collect(),
                ),
            ),
            (
                "stale_baseline_entries",
                Json::Arr(
                    self.stale
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("file", Json::Str(e.file.clone())),
                                ("line", Json::Num(e.line as f64)),
                                ("rule", Json::Str(e.rule.name().to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Renders the report as markdown: the rule table (with rationale) plus
    /// a findings table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# fdn-lint report\n\n");
        out.push_str(&format!(
            "{} file(s) scanned — {} new finding(s), {} baselined, {} stale baseline entr(y/ies)\n\n",
            self.files_scanned,
            self.new_count(),
            self.baselined_count(),
            self.stale.len()
        ));
        out.push_str("## Rules\n\n| rule | title | rationale |\n|------|-------|----------|\n");
        for rule in ALL_RULES {
            out.push_str(&format!(
                "| {} | {} | {} |\n",
                rule.name(),
                rule.title(),
                rule.rationale()
            ));
        }
        out.push_str("\n## Findings\n\n");
        if self.findings.is_empty() {
            out.push_str("No findings.\n");
        } else {
            out.push_str(
                "| location | rule | status | message |\n|----------|------|--------|--------|\n",
            );
            for (f, status) in &self.findings {
                out.push_str(&format!(
                    "| {}:{} | {} | {} | {} |\n",
                    f.file,
                    f.line,
                    f.rule.name(),
                    status.name(),
                    f.message.replace('|', "\\|")
                ));
            }
        }
        if !self.stale.is_empty() {
            out.push_str("\n## Stale baseline entries\n\n");
            for e in &self.stale {
                out.push_str(&format!("- {}:{} {}\n", e.file, e.line, e.rule.name()));
            }
        }
        out
    }

    /// Renders the report as compact human-readable text (the default CLI
    /// format): one `file:line rule message` per finding.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (f, status) in &self.findings {
            out.push_str(&format!(
                "{}:{}: {} [{}{}] {}\n",
                f.file,
                f.line,
                f.rule.title(),
                f.rule.name(),
                match status {
                    FindingStatus::New => "",
                    FindingStatus::Baselined => ", baselined",
                },
                f.message
            ));
            for (i, hop) in f.path.iter().enumerate() {
                out.push_str(&format!(
                    "    {} {hop}\n",
                    if i == 0 { "source" } else { "  via " }
                ));
            }
        }
        for e in &self.stale {
            out.push_str(&format!(
                "{}:{}: stale baseline entry for {} (violation no longer present)\n",
                e.file,
                e.line,
                e.rule.name()
            ));
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} new finding(s), {} baselined, {} stale\n",
            self.files_scanned,
            self.new_count(),
            self.baselined_count(),
            self.stale.len()
        ));
        out
    }

    /// Renders the report as GitHub Actions workflow commands, one per
    /// finding: unbaselined findings as `::error`, baselined as `::warning`,
    /// stale baseline entries as `::notice` — so findings annotate the
    /// offending lines inline on PRs.
    pub fn to_github(&self) -> String {
        let mut out = String::new();
        for (f, status) in &self.findings {
            let level = match status {
                FindingStatus::New => "error",
                FindingStatus::Baselined => "warning",
            };
            let mut message = f.message.clone();
            if !f.path.is_empty() {
                message.push_str(&format!(" [path: {}]", f.path.join(" -> ")));
            }
            out.push_str(&format!(
                "::{level} file={},line={},title={} {}::{}\n",
                github_escape_property(&f.file),
                f.line,
                f.rule.name(),
                github_escape_property(f.rule.title()),
                github_escape_data(&message)
            ));
        }
        for e in &self.stale {
            out.push_str(&format!(
                "::notice file={},line={},title=stale baseline entry::{} no longer fires at {}:{}\n",
                github_escape_property(&e.file),
                e.line,
                e.rule.name(),
                github_escape_property(&e.file),
                e.line
            ));
        }
        out
    }
}

/// Escapes the message part of a GitHub workflow command (`%`, CR, LF).
fn github_escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command property value (message escapes plus the
/// property delimiters `:` and `,`).
fn github_escape_property(s: &str) -> String {
    github_escape_data(s)
        .replace(':', "%3A")
        .replace(',', "%2C")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn finding(file: &str, line: u32, rule: RuleId) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: format!("violation in {file}"),
            path: Vec::new(),
        }
    }

    #[test]
    fn classification_against_baseline() {
        let old = finding("a.rs", 1, RuleId::D1);
        let new = finding("b.rs", 2, RuleId::D6);
        let baseline = Baseline::from_findings(&[old.clone(), finding("gone.rs", 3, RuleId::D5)]);
        let report = LintReport::new(2, vec![new, old], &baseline);
        assert_eq!(report.new_count(), 1);
        assert_eq!(report.baselined_count(), 1);
        assert_eq!(report.stale.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let baseline = Baseline::empty();
        let a = LintReport::new(
            2,
            vec![
                finding("b.rs", 2, RuleId::D6),
                finding("a.rs", 9, RuleId::D1),
            ],
            &baseline,
        );
        let b = LintReport::new(
            2,
            vec![
                finding("a.rs", 9, RuleId::D1),
                finding("b.rs", 2, RuleId::D6),
            ],
            &baseline,
        );
        assert_eq!(a.to_json_string(), b.to_json_string());
        let json = a.to_json_string();
        assert!(json.find("a.rs").unwrap() < json.find("b.rs").unwrap());
    }

    #[test]
    fn github_format_escapes_and_levels() {
        let old = finding("a.rs", 1, RuleId::D1);
        let mut new = finding("b,c.rs", 2, RuleId::F1);
        new.message = "taint\nacross lines: 100%".to_string();
        new.path = vec![
            "x::src (a.rs:1)".to_string(),
            "x::sink (b.rs:9)".to_string(),
        ];
        let baseline = Baseline::from_findings(std::slice::from_ref(&old));
        let report = LintReport::new(2, vec![old, new], &baseline);
        let gh = report.to_github();
        assert!(gh.contains("::warning file=a.rs,line=1,"));
        assert!(gh.contains("::error file=b%2Cc.rs,line=2,title=F1 "));
        assert!(gh.contains("taint%0Aacross lines: 100%25"));
        assert!(gh.contains("[path: x::src (a.rs:1) -> x::sink (b.rs:9)]"));
        assert!(!gh.contains("\n\n"), "one command per line");
    }

    #[test]
    fn flow_path_renders_in_json_and_text_only_when_present() {
        let lexical = finding("a.rs", 1, RuleId::D1);
        let mut flowf = finding("a.rs", 3, RuleId::F2);
        flowf.path = vec![
            "m::rows (a.rs:3)".to_string(),
            "m::render (a.rs:9)".to_string(),
        ];
        let report = LintReport::new(1, vec![lexical, flowf], &Baseline::empty());
        let json = report.to_json_string();
        // Exactly one finding carries a "path" array.
        assert_eq!(json.matches("\"path\"").count(), 1);
        let text = report.to_text();
        assert!(text.contains("source m::rows (a.rs:3)"));
        assert!(text.contains("  via  m::render (a.rs:9)"));
    }

    #[test]
    fn markdown_contains_rule_table_and_findings() {
        let report = LintReport::new(1, vec![finding("a.rs", 1, RuleId::D2)], &Baseline::empty());
        let md = report.to_markdown();
        assert!(md.contains("| D2 |"));
        assert!(md.contains("a.rs:1"));
        assert!(md.contains("iteration order"));
    }
}
